package docmodel

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Document is a node of the hierarchical document tree (§5.1). A document
// carries content (text or raw binary), an ordered list of child documents,
// and JSON-like properties. Leaf chunks are represented as Elements. A DocSet
// is a collection of Documents; a single value can represent anything from a
// freshly-read raw PDF (one node, binary content) to a fully parsed report
// (sections as internal nodes, elements as leaves) to an exploded chunk.
type Document struct {
	// ID uniquely identifies the document within a DocSet.
	ID string `json:"id"`
	// ParentID links an exploded chunk back to its source document, the
	// provenance hook lineage uses ("" for top-level documents).
	ParentID string `json:"parent_id,omitempty"`
	// Path is the source location the document was read from, if any.
	Path string `json:"path,omitempty"`
	// Title is a human-readable name for the document.
	Title string `json:"title,omitempty"`
	// Binary is raw, unparsed content (e.g. a rawdoc blob before
	// partitioning). Parsed documents usually leave it nil.
	Binary []byte `json:"-"`
	// Text is direct textual content for chunk-level documents.
	Text string `json:"text,omitempty"`
	// Elements are the leaf chunks of the document in reading order.
	Elements []*Element `json:"elements,omitempty"`
	// Children are nested sub-documents (e.g. sections of a long report).
	Children []*Document `json:"children,omitempty"`
	// Properties is the extracted/enriched metadata for the document.
	Properties Properties `json:"properties,omitempty"`
	// Embedding is the vector for chunk-level documents after embed().
	Embedding []float32 `json:"-"`
}

// New returns an empty document with the given ID.
func New(id string) *Document { return &Document{ID: id} }

// Clone returns a deep copy of the document tree. Transforms operate on
// clones so that upstream operators observe immutable inputs.
func (d *Document) Clone() *Document {
	if d == nil {
		return nil
	}
	cp := *d
	if d.Binary != nil {
		cp.Binary = make([]byte, len(d.Binary))
		copy(cp.Binary, d.Binary)
	}
	if d.Embedding != nil {
		cp.Embedding = make([]float32, len(d.Embedding))
		copy(cp.Embedding, d.Embedding)
	}
	cp.Properties = d.Properties.Clone()
	if d.Elements != nil {
		cp.Elements = make([]*Element, len(d.Elements))
		for i, e := range d.Elements {
			cp.Elements[i] = e.Clone()
		}
	}
	if d.Children != nil {
		cp.Children = make([]*Document, len(d.Children))
		for i, c := range d.Children {
			cp.Children[i] = c.Clone()
		}
	}
	return &cp
}

// Walk visits d and every descendant document in depth-first pre-order,
// stopping early if fn returns false.
func (d *Document) Walk(fn func(*Document) bool) {
	if d == nil {
		return
	}
	if !fn(d) {
		return
	}
	for _, c := range d.Children {
		c.Walk(fn)
	}
}

// AllElements returns the elements of d and all descendants in reading
// order.
func (d *Document) AllElements() []*Element {
	var out []*Element
	d.Walk(func(n *Document) bool {
		out = append(out, n.Elements...)
		return true
	})
	return out
}

// ElementsOfType returns all elements (including descendants') with the
// given layout class.
func (d *Document) ElementsOfType(t ElementType) []*Element {
	var out []*Element
	for _, e := range d.AllElements() {
		if e.Type == t {
			out = append(out, e)
		}
	}
	return out
}

// TextContent concatenates the document's own text plus every element's
// text (tables render as markdown, pictures contribute their summary) in
// reading order. This is the "text-representation" field the Luna planner
// sees (§6.1).
func (d *Document) TextContent() string {
	var sb strings.Builder
	d.Walk(func(n *Document) bool {
		if n.Text != "" {
			sb.WriteString(n.Text)
			sb.WriteString("\n")
		}
		for _, e := range n.Elements {
			switch {
			case e.Type == Table && e.Table != nil:
				sb.WriteString(e.Table.Markdown())
			case e.Type == Picture && e.Image != nil && e.Image.Summary != "":
				sb.WriteString("[image: " + e.Image.Summary + "]\n")
			case e.Text != "":
				sb.WriteString(e.Text)
				sb.WriteString("\n")
			}
		}
		return true
	})
	return sb.String()
}

// PageCount returns the highest page number any element reports.
func (d *Document) PageCount() int {
	maxPage := 0
	for _, e := range d.AllElements() {
		if e.Page > maxPage {
			maxPage = e.Page
		}
	}
	return maxPage
}

// AddElement appends an element to the document's leaf list.
func (d *Document) AddElement(e *Element) { d.Elements = append(d.Elements, e) }

// AddChild appends a child sub-document.
func (d *Document) AddChild(c *Document) { d.Children = append(d.Children, c) }

// Property returns the document property for key as a string ("" if
// absent).
func (d *Document) Property(key string) string { return d.Properties.String(key) }

// SetProperty assigns a document property, allocating the map if needed.
func (d *Document) SetProperty(key string, value any) {
	d.Properties = d.Properties.Set(key, value)
}

// MarshalJSON renders the document, eliding binary payloads but recording
// their size for debugging.
func (d *Document) MarshalJSON() ([]byte, error) {
	type alias Document // avoid recursion
	a := struct {
		*alias
		BinaryBytes int  `json:"binary_bytes,omitempty"`
		HasVector   bool `json:"has_embedding,omitempty"`
	}{alias: (*alias)(d), BinaryBytes: len(d.Binary), HasVector: d.Embedding != nil}
	return json.Marshal(a)
}

// Summary returns a short single-line description used in traces and the
// CLI drill-down view.
func (d *Document) Summary() string {
	title := d.Title
	if title == "" {
		title = d.ID
	}
	nElem := len(d.AllElements())
	return fmt.Sprintf("%s (elements=%d, props=%d)", title, nElem, len(d.Properties))
}

// Markdown renders the parsed document as Markdown: titles become headers,
// tables render as pipe tables, pictures as annotations. This is the
// "higher-level format" DocParse postprocessing emits (§4).
func (d *Document) Markdown() string {
	var sb strings.Builder
	if d.Title != "" {
		sb.WriteString("# " + d.Title + "\n\n")
	}
	d.Walk(func(n *Document) bool {
		for _, e := range n.Elements {
			switch e.Type {
			case Title:
				sb.WriteString("# " + e.Text + "\n\n")
			case SectionHeader:
				sb.WriteString("## " + e.Text + "\n\n")
			case Table:
				if e.Table != nil {
					sb.WriteString(e.Table.Markdown() + "\n")
				} else {
					sb.WriteString(e.Text + "\n\n")
				}
			case Picture:
				if e.Image != nil && e.Image.Summary != "" {
					sb.WriteString("![" + e.Image.Summary + "]()\n\n")
				} else {
					sb.WriteString("![figure]()\n\n")
				}
			case ListItem:
				sb.WriteString("- " + e.Text + "\n")
			case PageHeader, PageFooter:
				// page furniture is dropped from the reading view
			default:
				sb.WriteString(e.Text + "\n\n")
			}
		}
		return true
	})
	return sb.String()
}
