// Package docmodel defines the hierarchical, multi-modal document model
// at the heart of Sycamore (§5.1 of the paper). A document is a tree:
// each node carries content (text or binary), an ordered list of
// children, and a set of JSON-like key/value properties. Leaf nodes are
// Elements, each labeled with one of the 11 DocLayNet layout classes.
//
// Paper counterpart: the DocSet element — "hierarchical documents with a
// flexible schema" (§5.1).
//
// Concurrency: documents are plain data with no internal locking. The
// system-wide sharing convention is immutable-on-write: index snapshots
// and shared-subtree replays hand out documents that must be treated as
// read-only; any pipeline that mutates clones at its source (Clone is a
// deep copy). Goroutines may read one document concurrently, never write.
package docmodel
