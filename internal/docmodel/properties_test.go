package docmodel

import (
	"testing"
	"testing/quick"
)

func TestPropertiesCoercions(t *testing.T) {
	p := Properties{
		"s": "hello", "f": 3.5, "i": 7, "b": true,
		"bs": "True", "fs": " 2.25 ", "nil": nil,
	}
	if p.String("s") != "hello" || p.String("f") != "3.5" || p.String("b") != "true" {
		t.Errorf("String coercion: %q %q %q", p.String("s"), p.String("f"), p.String("b"))
	}
	if p.String("nil") != "" || p.String("missing") != "" {
		t.Error("nil/missing should stringify to empty")
	}
	if f, ok := p.Float("fs"); !ok || f != 2.25 {
		t.Errorf("Float(fs) = %v, %v", f, ok)
	}
	if i, ok := p.Int("i"); !ok || i != 7 {
		t.Errorf("Int(i) = %v, %v", i, ok)
	}
	if b, ok := p.Bool("bs"); !ok || !b {
		t.Errorf("Bool(bs) = %v, %v", b, ok)
	}
	if _, ok := p.Float("s"); ok {
		t.Error("Float of non-numeric string should fail")
	}
	if _, ok := p.Bool("f"); ok {
		t.Error("Bool of float should fail")
	}
}

func TestPropertiesSetOnNil(t *testing.T) {
	var p Properties
	p = p.Set("k", 1)
	if v, ok := p.Int("k"); !ok || v != 1 {
		t.Errorf("Set on nil map failed: %v %v", v, ok)
	}
}

func TestPropertiesMerge(t *testing.T) {
	a := Properties{"x": 1, "y": "keep"}
	b := Properties{"x": 2, "z": []string{"a"}}
	a = a.Merge(b)
	if v, _ := a.Int("x"); v != 2 {
		t.Error("merge should overwrite")
	}
	if a.String("y") != "keep" {
		t.Error("merge dropped existing key")
	}
	// Deep copy on merge: mutating b's slice must not affect a.
	b["z"].([]string)[0] = "mutated"
	if a["z"].([]string)[0] != "a" {
		t.Error("merge should deep-copy values")
	}
	var nilP Properties
	if got := nilP.Merge(nil); got != nil {
		t.Error("nil.Merge(nil) should stay nil")
	}
}

func TestPropertiesKeysSorted(t *testing.T) {
	p := Properties{"z": 1, "a": 2, "m": 3}
	keys := p.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "m" || keys[2] != "z" {
		t.Errorf("Keys = %v", keys)
	}
}

func TestPropertiesEqualAndClone(t *testing.T) {
	p := Properties{
		"s":    "v",
		"list": []string{"a", "b"},
		"anyl": []any{1.0, "x"},
		"nest": Properties{"inner": true},
		"m":    map[string]any{"k": "v"},
	}
	c := p.Clone()
	if !p.Equal(c) {
		t.Fatal("clone should be Equal")
	}
	c["nest"].(Properties)["inner"] = false
	if p.Equal(c) {
		t.Fatal("deep mutation should break equality")
	}
	if p["nest"].(Properties)["inner"] != true {
		t.Fatal("clone was shallow")
	}
}

func TestPropertiesEqualQuick(t *testing.T) {
	// Clone always yields Equal maps for string-keyed scalar properties.
	f := func(keys []string, vals []int64) bool {
		p := Properties{}
		for i, k := range keys {
			if i < len(vals) {
				p[k] = vals[i]
			}
		}
		return p.Equal(p.Clone())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertiesJSON(t *testing.T) {
	p := Properties{"a": 1.0, "b": "x"}
	s := p.JSON()
	if s != `{"a":1,"b":"x"}` {
		t.Errorf("JSON = %s", s)
	}
}
