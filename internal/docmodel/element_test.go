package docmodel

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestElementTypeString(t *testing.T) {
	cases := map[ElementType]string{
		Caption:       "Caption",
		ListItem:      "List-item",
		PageFooter:    "Page-footer",
		SectionHeader: "Section-header",
		Title:         "Title",
	}
	for et, want := range cases {
		if got := et.String(); got != want {
			t.Errorf("ElementType(%d).String() = %q, want %q", et, got, want)
		}
	}
	if got := ElementType(99).String(); got != "ElementType(99)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestParseElementType(t *testing.T) {
	for _, et := range AllElementTypes() {
		got, err := ParseElementType(et.String())
		if err != nil {
			t.Fatalf("ParseElementType(%q): %v", et.String(), err)
		}
		if got != et {
			t.Errorf("ParseElementType(%q) = %v, want %v", et.String(), got, et)
		}
	}
	// Case and separator insensitivity.
	if got, err := ParseElementType("section_header"); err != nil || got != SectionHeader {
		t.Errorf("ParseElementType(section_header) = %v, %v", got, err)
	}
	if got, err := ParseElementType("LIST-ITEM"); err != nil || got != ListItem {
		t.Errorf("ParseElementType(LIST-ITEM) = %v, %v", got, err)
	}
	if _, err := ParseElementType("bogus"); err == nil {
		t.Error("ParseElementType(bogus) should fail")
	}
}

func TestAllElementTypesCount(t *testing.T) {
	if got := len(AllElementTypes()); got != 11 {
		t.Fatalf("DocLayNet has 11 classes, got %d", got)
	}
}

func TestBBoxGeometry(t *testing.T) {
	a := BBox{0, 0, 10, 10}
	b := BBox{5, 5, 15, 15}
	if got := a.Area(); got != 100 {
		t.Errorf("Area = %v, want 100", got)
	}
	inter := a.Intersect(b)
	if inter.Area() != 25 {
		t.Errorf("Intersect area = %v, want 25", inter.Area())
	}
	u := a.Union(b)
	if u != (BBox{0, 0, 15, 15}) {
		t.Errorf("Union = %+v", u)
	}
	iou := a.IoU(b)
	want := 25.0 / 175.0
	if math.Abs(iou-want) > 1e-12 {
		t.Errorf("IoU = %v, want %v", iou, want)
	}
	// Disjoint boxes.
	c := BBox{100, 100, 110, 110}
	if a.IoU(c) != 0 {
		t.Errorf("disjoint IoU should be 0")
	}
	if !a.Contains(5, 5) || a.Contains(10, 10) {
		t.Error("Contains semantics wrong (half-open box expected)")
	}
}

func TestBBoxIoUProperties(t *testing.T) {
	// IoU is symmetric and bounded in [0,1]; IoU(x,x)=1 for non-degenerate x.
	f := func(x0, y0, w1, h1, dx, dy, w2, h2 float64) bool {
		norm := func(v float64) float64 { return math.Mod(math.Abs(v), 100) }
		a := BBox{norm(x0), norm(y0), norm(x0) + norm(w1) + 1, norm(y0) + norm(h1) + 1}
		b := BBox{norm(dx), norm(dy), norm(dx) + norm(w2) + 1, norm(dy) + norm(h2) + 1}
		iou1, iou2 := a.IoU(b), b.IoU(a)
		if math.Abs(iou1-iou2) > 1e-9 {
			return false
		}
		if iou1 < 0 || iou1 > 1+1e-9 {
			return false
		}
		return math.Abs(a.IoU(a)-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableDataAccessors(t *testing.T) {
	td := &TableData{
		NumRows: 2, NumCols: 2,
		Cells: []TableCell{
			{Row: 0, Col: 0, Text: "Aircraft", Header: true},
			{Row: 0, Col: 1, Text: "Cessna 172"},
			{Row: 1, Col: 0, Text: "Registration", Header: true},
			{Row: 1, Col: 1, Text: "N12345"},
		},
	}
	if c := td.Cell(1, 1); c == nil || c.Text != "N12345" {
		t.Fatalf("Cell(1,1) = %+v", c)
	}
	if c := td.Cell(5, 5); c != nil {
		t.Fatal("Cell out of range should be nil")
	}
	row := td.Row(0)
	if len(row) != 2 || row[0] != "Aircraft" {
		t.Errorf("Row(0) = %v", row)
	}
	m := td.AsMap()
	if m["Aircraft"] != "Cessna 172" || m["Registration"] != "N12345" {
		t.Errorf("AsMap = %v", m)
	}
	md := td.Markdown()
	if !strings.Contains(md, "| Aircraft | Cessna 172 |") || !strings.Contains(md, "| --- | --- |") {
		t.Errorf("Markdown:\n%s", md)
	}
}

func TestTableMarkdownEscapesPipes(t *testing.T) {
	td := &TableData{NumRows: 1, NumCols: 1, Cells: []TableCell{{Row: 0, Col: 0, Text: "a|b"}}}
	if !strings.Contains(td.Markdown(), `a\|b`) {
		t.Errorf("pipe not escaped: %s", td.Markdown())
	}
}

func TestElementClone(t *testing.T) {
	e := &Element{
		Type: Table, Text: "tbl", Page: 2,
		Properties: Properties{"k": "v"},
		Table:      &TableData{NumRows: 1, NumCols: 1, Cells: []TableCell{{Text: "x"}}},
		Image:      &ImageData{Format: "png", Width: 10, Height: 10},
	}
	c := e.Clone()
	c.Properties["k"] = "changed"
	c.Table.Cells[0].Text = "changed"
	c.Image.Format = "jpg"
	if e.Properties.String("k") != "v" || e.Table.Cells[0].Text != "x" || e.Image.Format != "png" {
		t.Error("Clone is not deep")
	}
	var nilElem *Element
	if nilElem.Clone() != nil {
		t.Error("nil Clone should be nil")
	}
}
