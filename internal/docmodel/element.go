package docmodel

import (
	"fmt"
	"strings"
)

// ElementType is one of the 11 DocLayNet layout classes the segmentation
// model assigns to a region (§4).
type ElementType int

// The 11 DocLayNet classes, in the canonical benchmark order.
const (
	Caption ElementType = iota
	Footnote
	Formula
	ListItem
	PageFooter
	PageHeader
	Picture
	SectionHeader
	Table
	Text
	Title
	numElementTypes
)

// NumElementTypes is the number of layout classes.
const NumElementTypes = int(numElementTypes)

var elementTypeNames = [...]string{
	Caption:       "Caption",
	Footnote:      "Footnote",
	Formula:       "Formula",
	ListItem:      "List-item",
	PageFooter:    "Page-footer",
	PageHeader:    "Page-header",
	Picture:       "Picture",
	SectionHeader: "Section-header",
	Table:         "Table",
	Text:          "Text",
	Title:         "Title",
}

// String returns the canonical DocLayNet class name.
func (t ElementType) String() string {
	if t < 0 || int(t) >= NumElementTypes {
		return fmt.Sprintf("ElementType(%d)", int(t))
	}
	return elementTypeNames[t]
}

// Valid reports whether t is one of the 11 defined classes.
func (t ElementType) Valid() bool { return t >= 0 && int(t) < NumElementTypes }

// ParseElementType resolves a class name (case-insensitive, "-" and "_"
// equivalent) to an ElementType.
func ParseElementType(s string) (ElementType, error) {
	norm := strings.ToLower(strings.ReplaceAll(s, "_", "-"))
	for i, name := range elementTypeNames {
		if strings.ToLower(name) == norm {
			return ElementType(i), nil
		}
	}
	return 0, fmt.Errorf("docmodel: unknown element type %q", s)
}

// AllElementTypes returns the 11 classes in canonical order.
func AllElementTypes() []ElementType {
	out := make([]ElementType, NumElementTypes)
	for i := range out {
		out[i] = ElementType(i)
	}
	return out
}

// BBox is an axis-aligned bounding box in page coordinates (points, origin at
// the top-left corner of the page).
type BBox struct {
	X0, Y0, X1, Y1 float64
}

// Width returns the box width (never negative for a valid box).
func (b BBox) Width() float64 { return b.X1 - b.X0 }

// Height returns the box height.
func (b BBox) Height() float64 { return b.Y1 - b.Y0 }

// Area returns the box area; degenerate boxes have zero area.
func (b BBox) Area() float64 {
	if b.X1 <= b.X0 || b.Y1 <= b.Y0 {
		return 0
	}
	return b.Width() * b.Height()
}

// Empty reports whether the box has zero area.
func (b BBox) Empty() bool { return b.Area() == 0 }

// Union returns the smallest box containing both b and o.
func (b BBox) Union(o BBox) BBox {
	if b.Empty() {
		return o
	}
	if o.Empty() {
		return b
	}
	return BBox{
		X0: min(b.X0, o.X0),
		Y0: min(b.Y0, o.Y0),
		X1: max(b.X1, o.X1),
		Y1: max(b.Y1, o.Y1),
	}
}

// Intersect returns the overlapping region of b and o (possibly empty).
func (b BBox) Intersect(o BBox) BBox {
	r := BBox{
		X0: max(b.X0, o.X0),
		Y0: max(b.Y0, o.Y0),
		X1: min(b.X1, o.X1),
		Y1: min(b.Y1, o.Y1),
	}
	if r.X1 <= r.X0 || r.Y1 <= r.Y0 {
		return BBox{}
	}
	return r
}

// IoU returns the intersection-over-union of b and o, the overlap metric
// COCO evaluation thresholds on.
func (b BBox) IoU(o BBox) float64 {
	inter := b.Intersect(o).Area()
	if inter == 0 {
		return 0
	}
	union := b.Area() + o.Area() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// Contains reports whether the point (x, y) lies inside the box.
func (b BBox) Contains(x, y float64) bool {
	return x >= b.X0 && x < b.X1 && y >= b.Y0 && y < b.Y1
}

// CenterX returns the horizontal center of the box.
func (b BBox) CenterX() float64 { return (b.X0 + b.X1) / 2 }

// CenterY returns the vertical center of the box.
func (b BBox) CenterY() float64 { return (b.Y0 + b.Y1) / 2 }

// Element is a leaf-level node of a document: a concrete chunk identified as
// one of the 11 layout classes, with its text, page placement, and
// type-specific payload (table structure, image metadata).
type Element struct {
	// Type is the layout class of the chunk.
	Type ElementType `json:"type"`
	// Text is the textual content of the chunk ("" for pictures unless a
	// summary was computed).
	Text string `json:"text,omitempty"`
	// Page is the 1-based page number the chunk appears on.
	Page int `json:"page"`
	// Box is the chunk's bounding box on its page.
	Box BBox `json:"bbox"`
	// Confidence is the detector's score for this region in [0, 1].
	Confidence float64 `json:"confidence,omitempty"`
	// Properties carries arbitrary extracted metadata for the chunk.
	Properties Properties `json:"properties,omitempty"`
	// Table holds the reconstructed cell grid when Type == Table.
	Table *TableData `json:"table,omitempty"`
	// Image holds raster metadata when Type == Picture.
	Image *ImageData `json:"image,omitempty"`
}

// Clone returns a deep copy of the element.
func (e *Element) Clone() *Element {
	if e == nil {
		return nil
	}
	cp := *e
	cp.Properties = e.Properties.Clone()
	cp.Table = e.Table.Clone()
	if e.Image != nil {
		img := *e.Image
		cp.Image = &img
	}
	return &cp
}

// ImageData describes a Picture element: format, resolution, and an optional
// model-generated textual summary (§4: "for images we can use a multi-modal
// LLM to compute a textual summary").
type ImageData struct {
	Format  string `json:"format"`
	Width   int    `json:"width"`
	Height  int    `json:"height"`
	Summary string `json:"summary,omitempty"`
}

// TableData is the reconstructed structure of a Table element: a grid of
// cells with row/column extents, as produced by the table-structure model.
type TableData struct {
	NumRows int         `json:"num_rows"`
	NumCols int         `json:"num_cols"`
	Cells   []TableCell `json:"cells"`
}

// TableCell is a single (possibly spanning) cell in a table grid.
type TableCell struct {
	Row     int    `json:"row"`
	Col     int    `json:"col"`
	RowSpan int    `json:"row_span,omitempty"`
	ColSpan int    `json:"col_span,omitempty"`
	Text    string `json:"text"`
	Header  bool   `json:"header,omitempty"`
	Box     BBox   `json:"bbox,omitempty"`
}

// Clone returns a deep copy of the table data.
func (t *TableData) Clone() *TableData {
	if t == nil {
		return nil
	}
	cp := *t
	cp.Cells = make([]TableCell, len(t.Cells))
	copy(cp.Cells, t.Cells)
	return &cp
}

// Cell returns the cell anchored at (row, col), or nil if none.
func (t *TableData) Cell(row, col int) *TableCell {
	for i := range t.Cells {
		c := &t.Cells[i]
		if c.Row == row && c.Col == col {
			return c
		}
	}
	return nil
}

// Row returns the texts of the cells anchored on row r, ordered by column.
func (t *TableData) Row(r int) []string {
	out := make([]string, 0, t.NumCols)
	for c := 0; c < t.NumCols; c++ {
		if cell := t.Cell(r, c); cell != nil {
			out = append(out, cell.Text)
		}
	}
	return out
}

// AsMap interprets a two-column table as key/value pairs, the layout NTSB
// factual-information tables use. Keys are first-column texts.
func (t *TableData) AsMap() map[string]string {
	m := make(map[string]string)
	if t.NumCols < 2 {
		return m
	}
	for r := 0; r < t.NumRows; r++ {
		key := ""
		if c := t.Cell(r, 0); c != nil {
			key = strings.TrimSpace(c.Text)
		}
		if key == "" {
			continue
		}
		val := ""
		if c := t.Cell(r, 1); c != nil {
			val = strings.TrimSpace(c.Text)
		}
		m[key] = val
	}
	return m
}

// Markdown renders the table as GitHub-flavored Markdown.
func (t *TableData) Markdown() string {
	var sb strings.Builder
	for r := 0; r < t.NumRows; r++ {
		sb.WriteString("|")
		for c := 0; c < t.NumCols; c++ {
			text := ""
			if cell := t.Cell(r, c); cell != nil {
				text = strings.ReplaceAll(cell.Text, "|", "\\|")
			}
			sb.WriteString(" " + text + " |")
		}
		sb.WriteString("\n")
		if r == 0 {
			sb.WriteString("|")
			for c := 0; c < t.NumCols; c++ {
				sb.WriteString(" --- |")
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}
