package docmodel

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleDoc() *Document {
	d := New("doc-1")
	d.Title = "Aviation Incident Report"
	d.AddElement(&Element{Type: Title, Text: "Aviation Incident Report", Page: 1})
	d.AddElement(&Element{Type: Text, Text: "The pilot reported a loss of engine power.", Page: 1})
	sec := New("doc-1-s1")
	sec.AddElement(&Element{Type: SectionHeader, Text: "Probable Cause", Page: 2})
	sec.AddElement(&Element{Type: Text, Text: "Fuel contamination.", Page: 2})
	sec.AddElement(&Element{
		Type: Table, Page: 3,
		Table: &TableData{NumRows: 1, NumCols: 2, Cells: []TableCell{
			{Row: 0, Col: 0, Text: "Registration"}, {Row: 0, Col: 1, Text: "N220SW"},
		}},
	})
	sec.AddElement(&Element{Type: Picture, Page: 3, Image: &ImageData{Format: "png", Summary: "wreckage photo"}})
	d.AddChild(sec)
	d.SetProperty("us_state", "AK")
	return d
}

func TestWalkOrder(t *testing.T) {
	d := sampleDoc()
	var ids []string
	d.Walk(func(n *Document) bool {
		ids = append(ids, n.ID)
		return true
	})
	if len(ids) != 2 || ids[0] != "doc-1" || ids[1] != "doc-1-s1" {
		t.Errorf("Walk order = %v", ids)
	}
	// Early stop.
	count := 0
	d.Walk(func(n *Document) bool { count++; return false })
	if count != 1 {
		t.Errorf("Walk early-stop visited %d nodes", count)
	}
}

func TestAllElementsAndTypes(t *testing.T) {
	d := sampleDoc()
	if got := len(d.AllElements()); got != 6 {
		t.Fatalf("AllElements = %d, want 6", got)
	}
	if got := len(d.ElementsOfType(Table)); got != 1 {
		t.Errorf("tables = %d, want 1", got)
	}
	if got := len(d.ElementsOfType(Text)); got != 2 {
		t.Errorf("texts = %d, want 2", got)
	}
}

func TestTextContent(t *testing.T) {
	txt := sampleDoc().TextContent()
	for _, want := range []string{"loss of engine power", "Probable Cause", "N220SW", "wreckage photo"} {
		if !strings.Contains(txt, want) {
			t.Errorf("TextContent missing %q:\n%s", want, txt)
		}
	}
}

func TestPageCount(t *testing.T) {
	if got := sampleDoc().PageCount(); got != 3 {
		t.Errorf("PageCount = %d, want 3", got)
	}
}

func TestDocumentCloneIsDeep(t *testing.T) {
	d := sampleDoc()
	d.Binary = []byte{1, 2, 3}
	d.Embedding = []float32{0.5}
	c := d.Clone()
	c.Binary[0] = 9
	c.Embedding[0] = 9
	c.Properties["us_state"] = "CA"
	c.Children[0].Elements[0].Text = "changed"
	if d.Binary[0] != 1 || d.Embedding[0] != 0.5 {
		t.Error("binary/embedding clone not deep")
	}
	if d.Property("us_state") != "AK" {
		t.Error("properties clone not deep")
	}
	if d.Children[0].Elements[0].Text != "Probable Cause" {
		t.Error("children clone not deep")
	}
}

func TestMarshalJSONElidesBinary(t *testing.T) {
	d := sampleDoc()
	d.Binary = make([]byte, 42)
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	if !strings.Contains(s, `"binary_bytes":42`) {
		t.Errorf("binary size not recorded: %s", s)
	}
	if strings.Contains(s, `"Binary"`) {
		t.Errorf("raw binary leaked into JSON")
	}
}

func TestMarkdownRendering(t *testing.T) {
	md := sampleDoc().Markdown()
	for _, want := range []string{"# Aviation Incident Report", "## Probable Cause", "| Registration | N220SW |", "![wreckage photo]()"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
}

func TestMarkdownDropsPageFurniture(t *testing.T) {
	d := New("d")
	d.AddElement(&Element{Type: PageHeader, Text: "SECRET HEADER"})
	d.AddElement(&Element{Type: Text, Text: "body"})
	md := d.Markdown()
	if strings.Contains(md, "SECRET HEADER") {
		t.Error("page header should be dropped from Markdown")
	}
	if !strings.Contains(md, "body") {
		t.Error("body text missing")
	}
}

func TestSummary(t *testing.T) {
	s := sampleDoc().Summary()
	if !strings.Contains(s, "Aviation Incident Report") || !strings.Contains(s, "elements=6") {
		t.Errorf("Summary = %q", s)
	}
	anon := New("x1")
	if !strings.Contains(anon.Summary(), "x1") {
		t.Errorf("untitled Summary should fall back to ID: %q", anon.Summary())
	}
}
