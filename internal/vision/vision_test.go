package vision

import (
	"strings"
	"testing"

	"aryn/internal/docmodel"
	"aryn/internal/rawdoc"
)

// samplePage builds a page with one of every major structure.
func samplePage() (rawdoc.Page, *rawdoc.Doc) {
	b := rawdoc.NewBuilder("t1", "Test")
	b.SetFurniture("HEADER TEXT", "FOOTER")
	b.AddTitle("Aviation Investigation Report")
	b.AddSectionHeader("Analysis")
	b.AddParagraph(strings.Repeat("The pilot reported a loss of engine power during cruise. ", 4))
	b.AddListItem("carburetor icing was likely")
	b.AddTable([][]string{{"Field", "Value"}, {"Aircraft", "Cessna 172"}, {"Registration", "N12345"}}, true)
	b.AddCaption("Table 1: aircraft details")
	b.AddImage("photograph of the wreckage", "png", 600, 400)
	b.AddFootnote("Conditions were visual.")
	doc := b.Doc()
	return doc.Pages[0], doc
}

func TestCleanSegmentationMatchesGroundTruth(t *testing.T) {
	page, doc := samplePage()
	// Zero-noise model: proposals + classifier only.
	m := NewModel("clean", 1, NoiseProfile{ClusterSlop: 1})
	dets := m.Segment(page, "t1/1")
	gt := doc.PageRegions(1)

	// Every GT region should have a detection with high IoU and the right
	// label.
	for _, g := range gt {
		bestIoU, bestType := 0.0, docmodel.ElementType(-1)
		for _, d := range dets {
			if iou := d.Box.IoU(g.Box); iou > bestIoU {
				bestIoU, bestType = iou, d.Type
			}
		}
		if bestIoU < 0.6 {
			t.Errorf("%v region: best IoU %.2f too low", g.Type, bestIoU)
			continue
		}
		if bestType != g.Type {
			t.Errorf("%v region classified as %v", g.Type, bestType)
		}
	}
}

func TestSegmentDeterministic(t *testing.T) {
	page, _ := samplePage()
	m := NewModel("svc", 42, ProfileTextract())
	a := m.Segment(page, "t1/1")
	b := m.Segment(page, "t1/1")
	if len(a) != len(b) {
		t.Fatalf("non-deterministic detection count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic detection %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestNoiseProfilesDegradeQuality(t *testing.T) {
	page, doc := samplePage()
	gt := doc.PageRegions(1)
	quality := func(p NoiseProfile) float64 {
		m := NewModel("svc", 7, p)
		var sum float64
		n := 0
		// Average best-IoU-with-correct-label over GT regions, over pages.
		for trial := 0; trial < 20; trial++ {
			dets := m.Segment(page, "t1/"+string(rune('a'+trial)))
			for _, g := range gt {
				best := 0.0
				for _, d := range dets {
					if d.Type == g.Type {
						if iou := d.Box.IoU(g.Box); iou > best {
							best = iou
						}
					}
				}
				sum += best
				n++
			}
		}
		return sum / float64(n)
	}
	docparse := quality(ProfileDocParse())
	textract := quality(ProfileTextract())
	azure := quality(ProfileAzure())
	if !(docparse > textract && textract > azure) {
		t.Errorf("quality ordering wrong: docparse=%.3f textract=%.3f azure=%.3f", docparse, textract, azure)
	}
	if docparse < 0.7 {
		t.Errorf("DocParse profile quality too low: %.3f", docparse)
	}
}

func TestTableStructureFromRules(t *testing.T) {
	page, doc := samplePage()
	var tableRegion docmodel.BBox
	var gt *docmodel.TableData
	for _, r := range doc.PageRegions(1) {
		if r.Type == docmodel.Table {
			tableRegion, gt = r.Box, r.Table
		}
	}
	if gt == nil {
		t.Fatal("no GT table on page")
	}
	td := TableStructure(page, tableRegion)
	if td.NumRows != gt.NumRows || td.NumCols != gt.NumCols {
		t.Fatalf("grid %dx%d, want %dx%d", td.NumRows, td.NumCols, gt.NumRows, gt.NumCols)
	}
	if c := td.Cell(1, 1); c == nil || c.Text != "Cessna 172" {
		t.Errorf("cell(1,1) = %+v", c)
	}
	if c := td.Cell(0, 0); c == nil || !c.Header {
		t.Errorf("header flag missing on first row: %+v", c)
	}
	if got := td.AsMap()["Registration"]; got != "N12345" {
		t.Errorf("AsMap[Registration] = %q", got)
	}
}

func TestTableStructureBorderless(t *testing.T) {
	// Runs laid out in a 2x2 grid with no rules.
	page := rawdoc.Page{Number: 1, Width: 612, Height: 792}
	texts := [][]string{{"Name", "Value"}, {"Speed", "120"}}
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			x := 100 + float64(c)*150
			y := 100 + float64(r)*20
			page.Runs = append(page.Runs, rawdoc.TextRun{
				Box:  docmodel.BBox{X0: x, Y0: y, X1: x + 60, Y1: y + 9},
				Text: texts[r][c], Font: rawdoc.FontTableCell,
			})
		}
	}
	td := TableStructure(page, docmodel.BBox{X0: 90, Y0: 90, X1: 400, Y1: 150})
	if td.NumRows != 2 || td.NumCols != 2 {
		t.Fatalf("borderless grid %dx%d", td.NumRows, td.NumCols)
	}
	if td.Cell(1, 1) == nil || td.Cell(1, 1).Text != "120" {
		t.Errorf("cell(1,1) = %+v", td.Cell(1, 1))
	}
}

func TestExtractTextReadingOrder(t *testing.T) {
	page := rawdoc.Page{Number: 1, Width: 612, Height: 792}
	add := func(x, y float64, s string) {
		page.Runs = append(page.Runs, rawdoc.TextRun{
			Box: docmodel.BBox{X0: x, Y0: y, X1: x + 50, Y1: y + 10}, Text: s, Font: rawdoc.FontBody,
		})
	}
	add(60, 140, "third")
	add(60, 100, "first")
	add(200, 100, "second")
	got := ExtractText(page, docmodel.BBox{X0: 0, Y0: 0, X1: 612, Y1: 792}, 0, 0)
	if got != "first second third" {
		t.Errorf("reading order = %q", got)
	}
	// Region restriction.
	got = ExtractText(page, docmodel.BBox{X0: 0, Y0: 90, X1: 612, Y1: 120}, 0, 0)
	if got != "first second" {
		t.Errorf("region-restricted = %q", got)
	}
}

func TestOCRCorruption(t *testing.T) {
	text := strings.Repeat("Registration N12345 cleared to land runway 10 ", 10)
	clean := corruptText(text, 0, 1)
	if clean != text {
		t.Error("zero rate should not corrupt")
	}
	noisy := corruptText(text, 0.2, 1)
	if noisy == text {
		t.Error("high rate should corrupt something")
	}
	if len([]rune(noisy)) != len([]rune(text)) {
		t.Error("corruption must preserve length (substitutions only)")
	}
	if corruptText(text, 0.2, 1) != noisy {
		t.Error("corruption must be deterministic per seed")
	}
}

func TestSummarizeImage(t *testing.T) {
	if got := SummarizeImage(&rawdoc.ImageBlob{Desc: "photograph of the accident site"}); got != "photograph of the accident site" {
		t.Errorf("photo desc should pass through: %q", got)
	}
	if got := SummarizeImage(&rawdoc.ImageBlob{Desc: "the main wreckage"}); !strings.Contains(got, "photograph showing") {
		t.Errorf("bare desc should get caption prefix: %q", got)
	}
	if got := SummarizeImage(nil); got != "an unlabeled figure" {
		t.Errorf("nil image: %q", got)
	}
}

func TestDetectTableGrids(t *testing.T) {
	// Two separate grids on one page.
	mk := func(x0, y0, x1, y1 float64) rawdoc.Rule {
		return rawdoc.Rule{Box: docmodel.BBox{X0: x0, Y0: y0, X1: x1, Y1: y1}}
	}
	var rules []rawdoc.Rule
	for _, top := range []float64{100, 400} {
		rules = append(rules,
			mk(50, top, 250, top+0.7),
			mk(50, top+20, 250, top+20.7),
			mk(50, top+40, 250, top+40.7),
			mk(50, top, 50.7, top+40),
			mk(150, top, 150.7, top+40),
			mk(250, top, 250.7, top+40),
		)
	}
	grids := DetectTableGrids(rules)
	if len(grids) != 2 {
		t.Fatalf("found %d grids, want 2", len(grids))
	}
	if grids[0].Y0 > grids[1].Y0 {
		t.Error("grids should be sorted by Y")
	}
	// A lone rule is not a grid.
	if got := DetectTableGrids(rules[:1]); len(got) != 0 {
		t.Errorf("single rule should not form a grid: %v", got)
	}
}
