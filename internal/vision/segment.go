package vision

import (
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"

	"aryn/internal/docmodel"
	"aryn/internal/rawdoc"
)

// Detection is one predicted layout region.
type Detection struct {
	Box        docmodel.BBox
	Type       docmodel.ElementType
	Confidence float64
}

// Segmenter turns a rendered page into labeled regions.
type Segmenter interface {
	// Segment detects regions on the page. pageKey seeds the noise model
	// (use docID/pageNumber) so runs are reproducible.
	Segment(page rawdoc.Page, pageKey string) []Detection
	// Name identifies the backing service/model.
	Name() string
}

// NoiseProfile calibrates a service's detection quality.
type NoiseProfile struct {
	// Jitter is the box-coordinate noise as a fraction of box size.
	Jitter float64
	// MissRate is the per-region probability of a missed detection.
	MissRate float64
	// ConfusionRate is the per-region probability of label confusion.
	ConfusionRate float64
	// MergeRate is the probability of merging two vertically adjacent
	// regions into one box.
	MergeRate float64
	// SplitRate is the probability of splitting a region into two boxes.
	SplitRate float64
	// FalsePositives is the expected number of spurious detections per
	// page.
	FalsePositives float64
	// ClusterSlop scales the paragraph-gap threshold: sloppy clustering
	// merges adjacent blocks organically (a proposal-quality failure, not
	// post-hoc noise).
	ClusterSlop float64
	// ConfidenceFloor is the minimum confidence emitted.
	ConfidenceFloor float64
}

// Model is the configurable segmentation model.
type Model struct {
	name    string
	seed    int64
	profile NoiseProfile
}

// NewModel builds a segmenter with the given noise profile.
func NewModel(name string, seed int64, profile NoiseProfile) *Model {
	if profile.ClusterSlop == 0 {
		profile.ClusterSlop = 1
	}
	return &Model{name: name, seed: seed, profile: profile}
}

// Name identifies the model.
func (m *Model) Name() string { return m.name }

// Service profiles calibrated against Table 1 of the paper. DocParse's
// deformable-DETR is the reference; the commercial services degrade in
// localization precision and label fidelity.

// ProfileDocParse is the paper's own DocLayNet-trained Deformable DETR.
func ProfileDocParse() NoiseProfile {
	return NoiseProfile{
		Jitter: 0.024, MissRate: 0.02, ConfusionRate: 0.05,
		MergeRate: 0.015, SplitRate: 0.012, FalsePositives: 1.6,
		ClusterSlop: 1.0, ConfidenceFloor: 0.5,
	}
}

// ProfileTextract approximates Amazon Textract's layout quality.
func ProfileTextract() NoiseProfile {
	return NoiseProfile{
		Jitter: 0.045, MissRate: 0.09, ConfusionRate: 0.15,
		MergeRate: 0.05, SplitRate: 0.04, FalsePositives: 3.0,
		ClusterSlop: 1.15, ConfidenceFloor: 0.35,
	}
}

// ProfileUnstructured approximates the Unstructured REST API with YoloX.
func ProfileUnstructured() NoiseProfile {
	return NoiseProfile{
		Jitter: 0.05, MissRate: 0.09, ConfusionRate: 0.20,
		MergeRate: 0.07, SplitRate: 0.05, FalsePositives: 5.5,
		ClusterSlop: 1.2, ConfidenceFloor: 0.3,
	}
}

// ProfileAzure approximates Azure AI Document Intelligence.
func ProfileAzure() NoiseProfile {
	return NoiseProfile{
		Jitter: 0.055, MissRate: 0.10, ConfusionRate: 0.23,
		MergeRate: 0.09, SplitRate: 0.06, FalsePositives: 9.0,
		ClusterSlop: 1.3, ConfidenceFloor: 0.25,
	}
}

// Segment implements Segmenter.
func (m *Model) Segment(page rawdoc.Page, pageKey string) []Detection {
	rng := m.pageRNG(pageKey)
	props := m.propose(page)
	dets := make([]Detection, 0, len(props))
	for _, pr := range props {
		label := classify(pr, page)
		// Real detectors emit a wide confidence spread over true positives.
		conf := 0.99 - rng.Float64()*0.35
		dets = append(dets, Detection{Box: pr.box, Type: label, Confidence: conf})
	}
	dets = m.applyNoise(rng, page, dets)
	sort.Slice(dets, func(i, j int) bool {
		if dets[i].Box.Y0 != dets[j].Box.Y0 {
			return dets[i].Box.Y0 < dets[j].Box.Y0
		}
		return dets[i].Box.X0 < dets[j].Box.X0
	})
	return dets
}

func (m *Model) pageRNG(pageKey string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(pageKey))
	return rand.New(rand.NewSource(m.seed ^ int64(h.Sum64())))
}

// proposal is an unlabeled region candidate with its member runs.
type proposal struct {
	box     docmodel.BBox
	runs    []rawdoc.TextRun
	isTable bool
	isImage bool
	image   *rawdoc.ImageBlob
}

// propose clusters the page into candidate regions: rule-grid tables
// first, then images, then font/gap clustering of the remaining text runs.
func (m *Model) propose(page rawdoc.Page) []proposal {
	var props []proposal

	tables := DetectTableGrids(page.Rules)
	inTable := func(b docmodel.BBox) int {
		for i, t := range tables {
			if t.Intersect(b).Area() > 0.5*b.Area() {
				return i
			}
		}
		return -1
	}
	tableRuns := make([][]rawdoc.TextRun, len(tables))
	var freeRuns []rawdoc.TextRun
	for _, r := range page.Runs {
		if ti := inTable(r.Box); ti >= 0 {
			tableRuns[ti] = append(tableRuns[ti], r)
		} else {
			freeRuns = append(freeRuns, r)
		}
	}
	for i, t := range tables {
		props = append(props, proposal{box: t, runs: tableRuns[i], isTable: true})
	}
	for i := range page.Images {
		img := page.Images[i]
		props = append(props, proposal{box: img.Box, isImage: true, image: &img})
	}

	// Sort free runs by reading position and cluster into blocks.
	sort.Slice(freeRuns, func(i, j int) bool {
		if freeRuns[i].Box.Y0 != freeRuns[j].Box.Y0 {
			return freeRuns[i].Box.Y0 < freeRuns[j].Box.Y0
		}
		return freeRuns[i].Box.X0 < freeRuns[j].Box.X0
	})
	var cur []rawdoc.TextRun
	flush := func() {
		if len(cur) == 0 {
			return
		}
		box := cur[0].Box
		for _, r := range cur[1:] {
			box = box.Union(r.Box)
		}
		props = append(props, proposal{box: box, runs: append([]rawdoc.TextRun(nil), cur...)})
		cur = nil
	}
	for _, r := range freeRuns {
		if len(cur) == 0 {
			cur = append(cur, r)
			continue
		}
		prev := cur[len(cur)-1]
		sameFont := prev.Font == r.Font
		gap := r.Box.Y0 - prev.Box.Y1
		maxGap := rawdoc.LineHeight(r.Font) * 0.75 * m.profile.ClusterSlop
		if sameFont && gap >= -1 && gap <= maxGap {
			cur = append(cur, r)
		} else {
			flush()
			cur = append(cur, r)
		}
	}
	flush()
	return props
}

// DetectTableGrids finds rectangular rule structures: clusters of rules
// whose union forms a grid-like box. DocParse uses the grids both for
// table proposals and to give tables ownership of their text runs.
func DetectTableGrids(rules []rawdoc.Rule) []docmodel.BBox {
	if len(rules) == 0 {
		return nil
	}
	// Union-find over rules that touch each other.
	parent := make([]int, len(rules))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	grown := make([]docmodel.BBox, len(rules))
	for i, r := range rules {
		grown[i] = docmodel.BBox{X0: r.Box.X0 - 1, Y0: r.Box.Y0 - 1, X1: r.Box.X1 + 1, Y1: r.Box.Y1 + 1}
	}
	for i := 0; i < len(rules); i++ {
		for j := i + 1; j < len(rules); j++ {
			if !grown[i].Intersect(grown[j]).Empty() {
				union(i, j)
			}
		}
	}
	groups := map[int][]int{}
	for i := range rules {
		root := find(i)
		groups[root] = append(groups[root], i)
	}
	var out []docmodel.BBox
	for _, members := range groups {
		if len(members) < 4 { // a grid needs >= 2 horizontal + 2 vertical rules
			continue
		}
		box := rules[members[0]].Box
		for _, i := range members[1:] {
			box = box.Union(rules[i].Box)
		}
		out = append(out, box)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Y0 < out[j].Y0 })
	return out
}

// classify assigns a layout class from typographic features — the
// decision surface a trained detector learns.
func classify(pr proposal, page rawdoc.Page) docmodel.ElementType {
	switch {
	case pr.isTable:
		return docmodel.Table
	case pr.isImage:
		return docmodel.Picture
	}
	if len(pr.runs) == 0 {
		return docmodel.Text
	}
	f := pr.runs[0].Font
	text := pr.runs[0].Text
	topBand := pr.box.Y0 < rawdoc.Margin
	bottomBand := pr.box.Y1 > page.Height-rawdoc.Margin+8
	switch {
	case topBand && f.Size < 10:
		return docmodel.PageHeader
	case bottomBand && f.Size < 10 && !strings.HasPrefix(text, "1."):
		return docmodel.PageFooter
	case f.Size >= 16 && f.Bold:
		return docmodel.Title
	case f.Size >= 11.5 && f.Bold:
		return docmodel.SectionHeader
	case f.Size <= 8:
		return docmodel.Footnote
	case strings.HasPrefix(text, "•"):
		return docmodel.ListItem
	case f.Italic && f.Size <= 9.5:
		return docmodel.Caption
	case f.Italic && isCentered(pr.box, page.Width):
		return docmodel.Formula
	default:
		return docmodel.Text
	}
}

func isCentered(b docmodel.BBox, pageWidth float64) bool {
	center := pageWidth / 2
	off := b.CenterX() - center
	if off < 0 {
		off = -off
	}
	return off < 0.08*pageWidth && b.Width() < 0.8*(pageWidth-2*rawdoc.Margin)
}

// confusable maps each class to the labels detectors mix it up with.
var confusable = map[docmodel.ElementType][]docmodel.ElementType{
	docmodel.Title:         {docmodel.SectionHeader, docmodel.Text},
	docmodel.SectionHeader: {docmodel.Title, docmodel.Text},
	docmodel.Text:          {docmodel.ListItem, docmodel.Caption},
	docmodel.ListItem:      {docmodel.Text},
	docmodel.Caption:       {docmodel.Text, docmodel.Footnote},
	docmodel.Footnote:      {docmodel.PageFooter, docmodel.Text},
	docmodel.PageFooter:    {docmodel.Footnote},
	docmodel.PageHeader:    {docmodel.Text},
	docmodel.Formula:       {docmodel.Text},
	// Table is absent: rule-grid proposals are unambiguous enough that
	// detectors essentially never relabel them (and DocLayNet models score
	// tables among their strongest classes).
	docmodel.Picture: {docmodel.Table},
}

// applyNoise degrades clean detections per the service profile.
func (m *Model) applyNoise(rng *rand.Rand, page rawdoc.Page, dets []Detection) []Detection {
	p := m.profile
	var out []Detection
	i := 0
	for i < len(dets) {
		d := dets[i]
		// Rule-grid tables are anchored geometry: detectors do not miss or
		// fragment them (DocLayNet models score Table among their best
		// classes); they can still jitter.
		solid := d.Type == docmodel.Table
		if !solid && rng.Float64() < p.MissRate {
			i++
			continue
		}
		// Merge with the next detection. Grid-anchored and raster regions
		// present hard visual boundaries, so merges happen only between
		// text-like neighbors.
		mergeable := d.Type != docmodel.Table && d.Type != docmodel.Picture &&
			i+1 < len(dets) && dets[i+1].Type != docmodel.Table && dets[i+1].Type != docmodel.Picture
		if mergeable && rng.Float64() < p.MergeRate {
			d.Box = d.Box.Union(dets[i+1].Box)
			if dets[i+1].Box.Area() > d.Box.Area()/2 && rng.Float64() < 0.5 {
				d.Type = dets[i+1].Type
			}
			i++ // consume the merged neighbor
		} else if !solid && rng.Float64() < p.SplitRate && d.Box.Height() > 30 {
			mid := (d.Box.Y0 + d.Box.Y1) / 2
			top, bottom := d, d
			top.Box.Y1 = mid
			bottom.Box.Y0 = mid
			top = m.perturb(rng, top)
			bottom = m.perturb(rng, bottom)
			out = append(out, top, bottom)
			i++
			continue
		}
		out = append(out, m.perturb(rng, d))
		i++
	}
	// False positives.
	nFP := int(p.FalsePositives)
	if rng.Float64() < p.FalsePositives-float64(nFP) {
		nFP++
	}
	for f := 0; f < nFP; f++ {
		w := 40 + rng.Float64()*120
		h := 10 + rng.Float64()*30
		x := rawdoc.Margin + rng.Float64()*(page.Width-2*rawdoc.Margin-w)
		y := rawdoc.Margin + rng.Float64()*(page.Height-2*rawdoc.Margin-h)
		// False positives span the confidence range (real detectors emit
		// confident hallucinations too), so they interleave with true
		// positives and depress precision without touching recall.
		out = append(out, Detection{
			Box:        docmodel.BBox{X0: x, Y0: y, X1: x + w, Y1: y + h},
			Type:       docmodel.ElementType(rng.Intn(docmodel.NumElementTypes)),
			Confidence: p.ConfidenceFloor + rng.Float64()*(0.93-p.ConfidenceFloor),
		})
	}
	return out
}

// perturb applies label confusion and box jitter to one detection.
func (m *Model) perturb(rng *rand.Rand, d Detection) Detection {
	p := m.profile
	if rng.Float64() < p.ConfusionRate {
		if alts := confusable[d.Type]; len(alts) > 0 {
			d.Type = alts[rng.Intn(len(alts))]
			d.Confidence *= 0.85
		}
	}
	if p.Jitter > 0 {
		w, h := d.Box.Width(), d.Box.Height()
		d.Box.X0 += rng.NormFloat64() * p.Jitter * w
		d.Box.X1 += rng.NormFloat64() * p.Jitter * w
		d.Box.Y0 += rng.NormFloat64() * p.Jitter * h
		d.Box.Y1 += rng.NormFloat64() * p.Jitter * h
		if d.Box.X1 <= d.Box.X0 {
			d.Box.X1 = d.Box.X0 + 1
		}
		if d.Box.Y1 <= d.Box.Y0 {
			d.Box.Y1 = d.Box.Y0 + 1
		}
	}
	if d.Confidence < p.ConfidenceFloor {
		d.Confidence = p.ConfidenceFloor
	}
	return d
}

var _ Segmenter = (*Model)(nil)
