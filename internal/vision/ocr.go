package vision

import (
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"

	"aryn/internal/docmodel"
	"aryn/internal/rawdoc"
)

// ExtractText reads the text inside a detected region in reading order
// (top-down, then left-right). With charErrorRate == 0 it behaves like
// direct extraction from the file format (PDFMiner, §4); a positive rate
// simulates OCR on scanned pages (EasyOCR/PaddleOCR) with character-level
// substitutions.
func ExtractText(page rawdoc.Page, region docmodel.BBox, charErrorRate float64, seed int64) string {
	return ExtractTextExcluding(page, region, nil, charErrorRate, seed)
}

// ExtractTextExcluding is ExtractText with ownership exclusions: runs
// whose centers fall inside any exclude box (detected table grids) belong
// to that structure and are not re-extracted as free text, even when a
// jittered text box overlaps them.
func ExtractTextExcluding(page rawdoc.Page, region docmodel.BBox, exclude []docmodel.BBox, charErrorRate float64, seed int64) string {
	var runs []rawdoc.TextRun
	for _, r := range page.Runs {
		cx, cy := r.Box.CenterX(), r.Box.CenterY()
		if !region.Contains(cx, cy) {
			continue
		}
		claimed := false
		for _, ex := range exclude {
			if ex.Contains(cx, cy) {
				claimed = true
				break
			}
		}
		if !claimed {
			runs = append(runs, r)
		}
	}
	sort.Slice(runs, func(i, j int) bool {
		if runs[i].Box.Y0 != runs[j].Box.Y0 {
			return runs[i].Box.Y0 < runs[j].Box.Y0
		}
		return runs[i].Box.X0 < runs[j].Box.X0
	})
	parts := make([]string, len(runs))
	for i, r := range runs {
		parts[i] = r.Text
	}
	text := strings.Join(parts, " ")
	if charErrorRate <= 0 || text == "" {
		return text
	}
	return corruptText(text, charErrorRate, seed)
}

// ocrConfusions are visually plausible character substitutions.
var ocrConfusions = map[rune][]rune{
	'0': {'O', 'o'}, 'O': {'0'}, '1': {'l', 'I'}, 'l': {'1', 'I'},
	'I': {'l', '1'}, '5': {'S'}, 'S': {'5'}, '8': {'B'}, 'B': {'8'},
	'm': {'n'}, 'n': {'m', 'r'}, 'e': {'c'}, 'c': {'e'}, 'a': {'o'},
	'u': {'v'}, 'v': {'u'},
}

// corruptText substitutes characters at the given rate with OCR-style
// confusions, deterministically per (text, seed).
func corruptText(text string, rate float64, seed int64) string {
	h := fnv.New64a()
	h.Write([]byte(text))
	rng := rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
	runes := []rune(text)
	for i, r := range runes {
		if rng.Float64() >= rate {
			continue
		}
		if subs, ok := ocrConfusions[r]; ok {
			runes[i] = subs[rng.Intn(len(subs))]
		}
	}
	return string(runes)
}

// SummarizeImage produces the caption a multi-modal model would generate
// for a picture region (§4: image summarization). The rawdoc format
// carries the latent scene description the renderer drew from; the
// summarizer phrases it as a caption.
func SummarizeImage(img *rawdoc.ImageBlob) string {
	if img == nil || img.Desc == "" {
		return "an unlabeled figure"
	}
	desc := strings.TrimSpace(img.Desc)
	low := strings.ToLower(desc)
	switch {
	case strings.HasPrefix(low, "photograph"), strings.HasPrefix(low, "photo"):
		return desc
	case strings.HasPrefix(low, "map"), strings.HasPrefix(low, "chart"), strings.HasPrefix(low, "diagram"):
		return desc
	default:
		return "photograph showing " + desc
	}
}
