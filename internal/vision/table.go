package vision

import (
	"math"
	"sort"
	"strings"

	"aryn/internal/docmodel"
	"aryn/internal/rawdoc"
)

// TableStructure recovers the cell grid of a detected table region — the
// Table-Transformer stage of DocParse (§4: "for tables, we use a Table
// Transformer-based model to identify the individual cells").
//
// It reads the rule lines inside the region to find row and column
// boundaries, then assigns text runs to cells. Like the paper's model it
// is robust but not clairvoyant: tables without visible rules fall back to
// run-position inference.
func TableStructure(page rawdoc.Page, region docmodel.BBox) *docmodel.TableData {
	return TableStructureOCR(page, region, 0, 0)
}

// TableStructureOCR is TableStructure for scanned pages: cell texts pass
// through the OCR channel and pick up character substitutions at the
// given error rate.
func TableStructureOCR(page rawdoc.Page, region docmodel.BBox, charErrorRate float64, seed int64) *docmodel.TableData {
	td := tableStructure(page, region)
	if charErrorRate > 0 {
		for i := range td.Cells {
			td.Cells[i].Text = corruptText(td.Cells[i].Text, charErrorRate, seed)
		}
	}
	return td
}

func tableStructure(page rawdoc.Page, region docmodel.BBox) *docmodel.TableData {
	// Pad the region generously: the detector's box is jittered
	// proportionally to its size, and boundary rules sit exactly on the
	// true table edge. The model then re-localizes to the rule grid it
	// finds, the way a table-structure model re-anchors on the cropped
	// image's visible lines.
	padX := 14.0
	if p := 0.08 * region.Width(); p > padX {
		padX = p
	}
	padY := 14.0
	if p := 0.08 * region.Height(); p > padY {
		padY = p
	}
	pad := docmodel.BBox{X0: region.X0 - padX, Y0: region.Y0 - padY, X1: region.X1 + padX, Y1: region.Y1 + padY}
	var hLines, vLines []float64
	for _, r := range page.Rules {
		if pad.Intersect(r.Box).Empty() {
			continue
		}
		if r.Box.Width() > r.Box.Height() {
			hLines = append(hLines, (r.Box.Y0+r.Box.Y1)/2)
		} else {
			vLines = append(vLines, (r.Box.X0+r.Box.X1)/2)
		}
	}
	hLines = dedupeSorted(hLines, 2)
	vLines = dedupeSorted(vLines, 2)

	if len(hLines) >= 2 && len(vLines) >= 2 {
		// Re-anchor run collection on the recovered grid bounds.
		grid := docmodel.BBox{
			X0: vLines[0] - 1, Y0: hLines[0] - 1,
			X1: vLines[len(vLines)-1] + 1, Y1: hLines[len(hLines)-1] + 1,
		}
		var runs []rawdoc.TextRun
		for _, run := range page.Runs {
			if grid.Contains(run.Box.CenterX(), run.Box.CenterY()) {
				runs = append(runs, run)
			}
		}
		return gridFromRules(hLines, vLines, runs)
	}
	var runs []rawdoc.TextRun
	for _, run := range page.Runs {
		if region.Contains(run.Box.CenterX(), run.Box.CenterY()) {
			runs = append(runs, run)
		}
	}
	return gridFromRuns(runs)
}

func dedupeSorted(vals []float64, tol float64) []float64 {
	if len(vals) == 0 {
		return nil
	}
	sort.Float64s(vals)
	out := vals[:1]
	for _, v := range vals[1:] {
		if v-out[len(out)-1] > tol {
			out = append(out, v)
		}
	}
	return out
}

// gridFromRules builds the cell grid from detected boundary lines.
func gridFromRules(hLines, vLines []float64, runs []rawdoc.TextRun) *docmodel.TableData {
	nRows, nCols := len(hLines)-1, len(vLines)-1
	td := &docmodel.TableData{NumRows: nRows, NumCols: nCols}
	cellText := make([][]strings.Builder, nRows)
	for r := range cellText {
		cellText[r] = make([]strings.Builder, nCols)
	}
	locate := func(v float64, bounds []float64) int {
		for i := 0; i+1 < len(bounds); i++ {
			if v >= bounds[i] && v < bounds[i+1] {
				return i
			}
		}
		return -1
	}
	// Bold runs in the first row mark a header.
	headerRow := false
	for _, run := range runs {
		r := locate(run.Box.CenterY(), hLines)
		c := locate(run.Box.CenterX(), vLines)
		if r < 0 || c < 0 {
			continue
		}
		if r == 0 && run.Font.Bold {
			headerRow = true
		}
		sb := &cellText[r][c]
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(run.Text)
	}
	for r := 0; r < nRows; r++ {
		for c := 0; c < nCols; c++ {
			td.Cells = append(td.Cells, docmodel.TableCell{
				Row: r, Col: c,
				Text:   cellText[r][c].String(),
				Header: headerRow && r == 0,
				Box: docmodel.BBox{
					X0: vLines[c], Y0: hLines[r],
					X1: vLines[c+1], Y1: hLines[r+1],
				},
			})
		}
	}
	return td
}

// gridFromRuns infers a grid for borderless tables by clustering run
// positions into row bands and column bands.
func gridFromRuns(runs []rawdoc.TextRun) *docmodel.TableData {
	if len(runs) == 0 {
		return &docmodel.TableData{}
	}
	var ys, xs []float64
	for _, r := range runs {
		ys = append(ys, r.Box.Y0)
		xs = append(xs, r.Box.X0)
	}
	rows := clusterValues(ys, 4)
	cols := clusterValues(xs, 12)
	td := &docmodel.TableData{NumRows: len(rows), NumCols: len(cols)}
	assign := func(v float64, centers []float64) int {
		best, bestD := 0, math.Inf(1)
		for i, c := range centers {
			if d := math.Abs(v - c); d < bestD {
				best, bestD = i, d
			}
		}
		return best
	}
	cells := map[[2]int]*docmodel.TableCell{}
	for _, run := range runs {
		r, c := assign(run.Box.Y0, rows), assign(run.Box.X0, cols)
		key := [2]int{r, c}
		if cell, ok := cells[key]; ok {
			cell.Text += " " + run.Text
			cell.Box = cell.Box.Union(run.Box)
		} else {
			cells[key] = &docmodel.TableCell{Row: r, Col: c, Text: run.Text, Box: run.Box}
		}
	}
	keys := make([][2]int, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		td.Cells = append(td.Cells, *cells[k])
	}
	return td
}

// clusterValues 1-D clusters sorted values with the given gap tolerance
// and returns cluster centers.
func clusterValues(vals []float64, tol float64) []float64 {
	if len(vals) == 0 {
		return nil
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	var centers []float64
	start, sum, n := sorted[0], sorted[0], 1.0
	last := sorted[0]
	_ = start
	for _, v := range sorted[1:] {
		if v-last > tol {
			centers = append(centers, sum/n)
			sum, n = 0, 0
		}
		sum += v
		n++
		last = v
	}
	centers = append(centers, sum/n)
	return centers
}
