// Package vision provides the simulated vision models DocParse composes
// (§4): page segmentation into the 11 DocLayNet classes, table-structure
// recovery, OCR, and image summarization.
//
// The segmenter is a real model over page geometry: it proposes regions
// by clustering text runs (paragraph-gap heuristics plus rule-grid table
// detection) and classifies them from typographic features — the same
// signal a Deformable-DETR extracts from rendered pixels. Service quality
// differences are a calibrated noise model (localization jitter, missed
// detections, label confusion, merge/split errors, false positives)
// seeded per page, reproducing the quality spread Table 1 measures
// between DocParse, Textract, Unstructured, and Azure.
//
// Paper counterpart: the Aryn Partitioner's vision stack (§4, Table 1).
//
// Concurrency: models are read-only after construction; all noise is
// seeded per page, so concurrent page segmentation is safe and
// deterministic.
package vision
