// Package fault is a deterministic, seeded fault injector for chaos
// testing the serving stack. It wraps the backing model as llm.Client
// middleware (injected at the backend boundary, beneath cache, breaker,
// and batcher) and hooks the docset ingest/query operator paths, so
// scenarios can script backend failure without touching production code
// paths.
//
// A Spec describes the faults to inject: transient/permanent error
// rates, latency spikes, truncated responses, Retry-After hints, and
// scripted outage windows ("backend dead from t=2s to t=5s", measured
// from spec activation). Specs are JSON (see docs/fault-injection.md for
// runnable examples) and swappable at runtime: arynd activates one at
// boot via -fault-spec and exposes the dev-only /faults endpoint so
// chaos scenarios can flip faults mid-run.
//
// Determinism: all randomness flows from the spec's seed through one
// guarded rand stream, so a single-threaded caller replays the same
// fault sequence for the same seed. Concurrent callers share the stream
// (scheduling order decides who draws what), which is the right trade
// for a chaos harness: individual runs stay seeded and reportable while
// concurrency itself provides the adversarial interleavings.
//
// Concurrency: Injector is safe for concurrent use; Set swaps the active
// spec atomically with respect to in-flight fate draws.
package fault
