package fault

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"aryn/internal/llm"
)

// Window is a scripted outage interval, measured in milliseconds from the
// moment the spec was activated (Injector.Set). During a window every LLM
// call is rejected with a transient error carrying a Retry-After hint for
// the window's remainder.
type Window struct {
	StartMS int64 `json:"start_ms"`
	EndMS   int64 `json:"end_ms"`
}

// Spec describes the faults to inject. The zero Spec injects nothing, so
// an injector can stay wired into production paths at zero cost until a
// chaos scenario activates a real spec.
type Spec struct {
	// Seed feeds the deterministic fault stream (same seed, same
	// single-threaded draw sequence).
	Seed int64 `json:"seed,omitempty"`

	// ErrorRate is the probability [0,1] that an LLM call fails.
	ErrorRate float64 `json:"error_rate,omitempty"`
	// PermanentRate is the fraction [0,1] of injected errors that are
	// permanent (not retryable). The rest unwrap to llm.ErrTransient.
	PermanentRate float64 `json:"permanent_rate,omitempty"`
	// RetryAfterMS, when > 0, attaches a Retry-After hint of this many
	// milliseconds to injected transient errors.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`

	// LatencyMS is the spike added to an LLM call when the LatencyRate
	// draw hits.
	LatencyMS   int64   `json:"latency_ms,omitempty"`
	LatencyRate float64 `json:"latency_rate,omitempty"`

	// TruncateRate is the probability [0,1] that a successful response is
	// truncated to half its text — the "garbled/cut-off output" failure
	// mode, exercising downstream parse tolerance.
	TruncateRate float64 `json:"truncate_rate,omitempty"`

	// Outages are scripted dead windows relative to spec activation.
	Outages []Window `json:"outages,omitempty"`

	// OpErrorRate and OpLatencyMS drive the non-LLM operator hooks in the
	// ingest/index paths (docset stage attempts): each hooked attempt
	// fails transiently with probability OpErrorRate and sleeps
	// OpLatencyMS first.
	OpErrorRate float64 `json:"op_error_rate,omitempty"`
	OpLatencyMS int64   `json:"op_latency_ms,omitempty"`
}

// Active reports whether the spec injects anything at all.
func (s Spec) Active() bool {
	return s.ErrorRate > 0 || s.LatencyRate > 0 || s.TruncateRate > 0 ||
		len(s.Outages) > 0 || s.OpErrorRate > 0 || s.OpLatencyMS > 0
}

// ParseSpec decodes a JSON fault spec, rejecting unknown fields so a
// typo'd knob fails loudly instead of silently injecting nothing.
func ParseSpec(raw string) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("fault: parse spec: %w", err)
	}
	return s, nil
}

// Stats counts injected faults since the last Set.
type Stats struct {
	// Calls counts LLM calls that passed through the injector.
	Calls int64 `json:"calls"`
	// Transient and Permanent count injected LLM errors by class.
	Transient int64 `json:"transient"`
	Permanent int64 `json:"permanent"`
	// OutageRejections counts calls rejected by a scripted outage window.
	OutageRejections int64 `json:"outage_rejections"`
	// LatencySpikes and Truncated count the non-error fault kinds.
	LatencySpikes int64 `json:"latency_spikes"`
	Truncated     int64 `json:"truncated"`
	// OpCalls and OpFaults count operator-hook attempts and injected
	// operator failures.
	OpCalls  int64 `json:"op_calls"`
	OpFaults int64 `json:"op_faults"`
}

// Error is an injected failure. Transient errors unwrap to
// llm.ErrTransient so the resilience middleware and docset retry loops
// treat them exactly like organic retryable failures.
type Error struct {
	// Op labels where the fault was injected ("llm" or an operator name).
	Op string
	// Transient marks the error retryable.
	Transient bool
	// After is the Retry-After hint (0 = none).
	After time.Duration
}

// Error renders the injected failure.
func (e *Error) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("fault: injected %s failure (%s)", kind, e.Op)
}

// Unwrap exposes llm.ErrTransient for retryable injected faults so
// errors.Is-based retry classification works unchanged.
func (e *Error) Unwrap() error {
	if e.Transient {
		return llm.ErrTransient
	}
	return nil
}

// RetryAfter returns the backoff hint carried by the fault.
func (e *Error) RetryAfter() time.Duration { return e.After }

// Injector draws faults from an activated Spec. It is safe for concurrent
// use; the zero-spec injector is inert.
type Injector struct {
	mu    sync.Mutex
	spec  Spec
	epoch time.Time // when the current spec was activated
	rng   *rand.Rand
	stats Stats
	now   func() time.Time // test hook
}

// New returns an injector with spec activated now.
func New(spec Spec) *Injector {
	inj := &Injector{now: time.Now}
	inj.Set(spec)
	return inj
}

// Set activates a new spec: outage windows re-anchor to now, the fault
// stream reseeds, and stats reset so each scenario reads its own counts.
func (inj *Injector) Set(spec Spec) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.spec = spec
	inj.epoch = inj.now()
	inj.rng = rand.New(rand.NewSource(spec.Seed + 1))
	inj.stats = Stats{}
}

// Clear deactivates fault injection (equivalent to Set of a zero Spec).
func (inj *Injector) Clear() { inj.Set(Spec{}) }

// Spec returns the active spec.
func (inj *Injector) Spec() Spec {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.spec
}

// Stats returns the fault counters accumulated since the last Set.
func (inj *Injector) Stats() Stats {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.stats
}

// llmFate draws the fate of one LLM call: a latency spike to apply, an
// error to return, and whether a successful response should be truncated.
func (inj *Injector) llmFate() (delay time.Duration, err error, truncate bool) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.stats.Calls++
	s := inj.spec
	if !s.Active() {
		return 0, nil, false
	}
	elapsed := inj.now().Sub(inj.epoch)
	for _, w := range s.Outages {
		start, end := time.Duration(w.StartMS)*time.Millisecond, time.Duration(w.EndMS)*time.Millisecond
		if elapsed >= start && elapsed < end {
			inj.stats.OutageRejections++
			inj.stats.Transient++
			return 0, &Error{Op: "llm", Transient: true, After: end - elapsed}, false
		}
	}
	if s.LatencyRate > 0 && inj.rng.Float64() < s.LatencyRate {
		inj.stats.LatencySpikes++
		delay = time.Duration(s.LatencyMS) * time.Millisecond
	}
	if s.ErrorRate > 0 && inj.rng.Float64() < s.ErrorRate {
		if s.PermanentRate > 0 && inj.rng.Float64() < s.PermanentRate {
			inj.stats.Permanent++
			return delay, &Error{Op: "llm", Transient: false}, false
		}
		inj.stats.Transient++
		return delay, &Error{Op: "llm", Transient: true, After: time.Duration(s.RetryAfterMS) * time.Millisecond}, false
	}
	if s.TruncateRate > 0 && inj.rng.Float64() < s.TruncateRate {
		inj.stats.Truncated++
		truncate = true
	}
	return delay, nil, truncate
}

// Hook injects operator-path faults: called once per docset stage attempt
// with the operator name. Returns nil when the attempt should proceed.
func (inj *Injector) Hook(op string) error {
	inj.mu.Lock()
	s := inj.spec
	inj.stats.OpCalls++
	var fail bool
	if s.OpErrorRate > 0 && inj.rng.Float64() < s.OpErrorRate {
		fail = true
		inj.stats.OpFaults++
	}
	inj.mu.Unlock()
	if s.OpLatencyMS > 0 {
		time.Sleep(time.Duration(s.OpLatencyMS) * time.Millisecond)
	}
	if fail {
		return &Error{Op: op, Transient: true}
	}
	return nil
}

// Client wraps inner with fault injection. The wrapper preserves batching
// beneath it by implementing CompleteBatch when scheduling faults.
func (inj *Injector) Client(inner llm.Client) llm.Client {
	return &faultClient{inj: inj, inner: inner}
}

// faultClient is the llm.Client middleware face of the injector. It sits
// at the backend boundary (beneath cache, breaker, and batcher) so
// injected faults exercise the full resilience stack above it.
type faultClient struct {
	inj   *Injector
	inner llm.Client
}

// Complete draws a fate, applies any latency spike (respecting ctx
// cancellation), and forwards or fails accordingly.
func (f *faultClient) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	delay, ferr, truncate := f.inj.llmFate()
	if delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return llm.Response{}, ctx.Err()
		case <-t.C:
		}
	}
	if ferr != nil {
		return llm.Response{}, ferr
	}
	resp, err := f.inner.Complete(ctx, req)
	if err == nil && truncate {
		resp.Text = resp.Text[:len(resp.Text)/2]
	}
	return resp, err
}

// CompleteBatch draws one fate per grouped dispatch — a batch is one
// upstream call, so it fails, spikes, or truncates as a unit. A batch-level
// injected error makes the Batcher degrade to per-request dispatch, where
// each request then draws its own fate; that keeps batching live beneath
// the injector while faults still land per-call.
func (f *faultClient) CompleteBatch(ctx context.Context, reqs []llm.Request) ([]llm.Response, error) {
	delay, ferr, truncate := f.inj.llmFate()
	if delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
	}
	if ferr != nil {
		return nil, ferr
	}
	var resps []llm.Response
	var err error
	if bc, ok := f.inner.(llm.BatchClient); ok {
		resps, err = bc.CompleteBatch(ctx, reqs)
	} else {
		resps = make([]llm.Response, len(reqs))
		for i, r := range reqs {
			if resps[i], err = f.inner.Complete(ctx, r); err != nil {
				return nil, err
			}
		}
	}
	if err == nil && truncate {
		for i := range resps {
			resps[i].Text = resps[i].Text[:len(resps[i].Text)/2]
		}
	}
	return resps, err
}

// Name identifies the wrapped model.
func (f *faultClient) Name() string { return f.inner.Name() }

// Inner returns the wrapped client so StatsOf keeps walking the chain.
func (f *faultClient) Inner() llm.Client { return f.inner }

var (
	_ llm.Client      = (*faultClient)(nil)
	_ llm.BatchClient = (*faultClient)(nil)
)
