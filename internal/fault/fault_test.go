package fault

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"aryn/internal/llm"
)

// okClient answers every completion with a fixed text.
type okClient struct {
	mu    sync.Mutex
	calls int
}

func (c *okClient) Complete(_ context.Context, _ llm.Request) (llm.Response, error) {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	return llm.Response{Text: "0123456789"}, nil
}
func (c *okClient) Name() string { return "ok" }

// fateString runs n calls through a fresh injector and encodes each
// outcome as one character, giving a comparable fate stream.
func fateString(t *testing.T, spec Spec, n int) string {
	t.Helper()
	inj := New(spec)
	client := inj.Client(&okClient{})
	var sb strings.Builder
	for i := 0; i < n; i++ {
		resp, err := client.Complete(context.Background(), llm.Request{Prompt: "p"})
		switch {
		case err == nil && len(resp.Text) == 10:
			sb.WriteByte('o') // ok
		case err == nil:
			sb.WriteByte('t') // truncated
		case errors.Is(err, llm.ErrTransient):
			sb.WriteByte('e') // transient error
		default:
			sb.WriteByte('p') // permanent error
		}
	}
	return sb.String()
}

// TestInjectorDeterminism: the fate stream is a pure function of the seed
// and the call sequence.
func TestInjectorDeterminism(t *testing.T) {
	spec := Spec{Seed: 9, ErrorRate: 0.4, PermanentRate: 0.25, TruncateRate: 0.2}
	a := fateString(t, spec, 200)
	b := fateString(t, spec, 200)
	if a != b {
		t.Fatalf("same seed, different fate streams:\n%s\n%s", a, b)
	}
	if !strings.ContainsAny(a, "e") || !strings.Contains(a, "o") {
		t.Fatalf("fate stream exercised too little: %s", a)
	}
	spec.Seed = 10
	if fateString(t, spec, 200) == a {
		t.Error("different seeds produced identical 200-call fate streams")
	}
}

// TestInjectorSetResetsStreamAndStats: Set re-anchors everything, so a
// scenario reads its own deterministic world.
func TestInjectorSetResetsStreamAndStats(t *testing.T) {
	spec := Spec{Seed: 9, ErrorRate: 0.5}
	inj := New(spec)
	client := inj.Client(&okClient{})
	var first []bool
	for i := 0; i < 50; i++ {
		_, err := client.Complete(context.Background(), llm.Request{})
		first = append(first, err != nil)
	}
	if inj.Stats().Calls != 50 {
		t.Fatalf("stats.Calls = %d, want 50", inj.Stats().Calls)
	}
	inj.Set(spec)
	if got := inj.Stats(); got.Calls != 0 || got.Transient != 0 {
		t.Fatalf("Set did not reset stats: %+v", got)
	}
	for i := 0; i < 50; i++ {
		_, err := client.Complete(context.Background(), llm.Request{})
		if (err != nil) != first[i] {
			t.Fatalf("call %d diverged after an identical re-Set", i)
		}
	}
}

// TestOutageWindows: inside a scripted window every call is rejected with
// a transient error hinting the window's remainder; outside, calls flow.
func TestOutageWindows(t *testing.T) {
	inj := &Injector{now: time.Now}
	inj.Set(Spec{})
	clock := time.Unix(5000, 0)
	inj.now = func() time.Time { return clock }
	inj.Set(Spec{Outages: []Window{{StartMS: 100, EndMS: 300}}})
	client := inj.Client(&okClient{})

	// Before the window opens.
	clock = clock.Add(50 * time.Millisecond)
	if _, err := client.Complete(context.Background(), llm.Request{}); err != nil {
		t.Fatalf("call before the outage window failed: %v", err)
	}

	// Inside: rejected, with the remainder as the Retry-After hint.
	clock = clock.Add(150 * time.Millisecond) // elapsed 200ms
	_, err := client.Complete(context.Background(), llm.Request{})
	if !errors.Is(err, llm.ErrTransient) {
		t.Fatalf("outage call: want a transient rejection, got %v", err)
	}
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("outage error is not a fault.Error: %v", err)
	}
	if fe.After != 100*time.Millisecond {
		t.Errorf("Retry-After hint = %s, want the 100ms window remainder", fe.After)
	}

	// After the window closes.
	clock = clock.Add(200 * time.Millisecond) // elapsed 400ms
	if _, err := client.Complete(context.Background(), llm.Request{}); err != nil {
		t.Fatalf("call after the outage window failed: %v", err)
	}
	if st := inj.Stats(); st.OutageRejections != 1 {
		t.Errorf("stats = %+v, want exactly 1 outage rejection", st)
	}
}

// TestTruncation: a truncate fate halves the response text.
func TestTruncation(t *testing.T) {
	inj := New(Spec{Seed: 3, TruncateRate: 1})
	client := inj.Client(&okClient{})
	resp, err := client.Complete(context.Background(), llm.Request{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text != "01234" {
		t.Fatalf("truncated text %q, want the first half of %q", resp.Text, "0123456789")
	}
	if st := inj.Stats(); st.Truncated != 1 {
		t.Errorf("stats = %+v, want 1 truncation", st)
	}
}

// TestHook: operator-path faults are transient and counted.
func TestHook(t *testing.T) {
	inj := New(Spec{Seed: 3, OpErrorRate: 1})
	err := inj.Hook("write[index]")
	if !errors.Is(err, llm.ErrTransient) {
		t.Fatalf("hook fault must be transient, got %v", err)
	}
	if !strings.Contains(err.Error(), "write[index]") {
		t.Errorf("hook error %q does not carry the operator name", err)
	}
	inj.Clear()
	if err := inj.Hook("write[index]"); err != nil {
		t.Fatalf("cleared injector still injecting: %v", err)
	}
	if st := inj.Stats(); st.OpCalls != 1 || st.OpFaults != 0 {
		t.Errorf("stats after Clear = %+v, want fresh counters", st)
	}
}

// TestInertZeroSpec: the zero spec draws nothing and never perturbs
// traffic — the wiring-always-on contract.
func TestInertZeroSpec(t *testing.T) {
	inj := New(Spec{})
	if inj.Spec().Active() {
		t.Fatal("zero spec reports active")
	}
	inner := &okClient{}
	client := inj.Client(inner)
	for i := 0; i < 100; i++ {
		resp, err := client.Complete(context.Background(), llm.Request{})
		if err != nil || resp.Text != "0123456789" {
			t.Fatalf("inert injector perturbed call %d: %q, %v", i, resp.Text, err)
		}
	}
	if err := inj.Hook("anything"); err != nil {
		t.Fatalf("inert hook injected: %v", err)
	}
	if st := inj.Stats(); st.Calls != 100 || st.Transient+st.Permanent+st.Truncated+st.LatencySpikes != 0 {
		t.Errorf("inert stats = %+v", st)
	}
}

// TestParseSpec: valid JSON round-trips; unknown fields fail loudly.
func TestParseSpec(t *testing.T) {
	s, err := ParseSpec(`{"seed": 4, "error_rate": 0.25, "outages": [{"start_ms": 0, "end_ms": 500}]}`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 4 || s.ErrorRate != 0.25 || len(s.Outages) != 1 || s.Outages[0].EndMS != 500 {
		t.Fatalf("parsed spec = %+v", s)
	}
	if !s.Active() {
		t.Error("parsed spec reports inactive")
	}
	if _, err := ParseSpec(`{"eror_rate": 0.25}`); err == nil {
		t.Fatal("typo'd field parsed silently")
	}
}

// batchClient records batch sizes beneath the injector.
type batchClient struct {
	okClient
	batches []int
}

func (c *batchClient) CompleteBatch(_ context.Context, reqs []llm.Request) ([]llm.Response, error) {
	c.mu.Lock()
	c.batches = append(c.batches, len(reqs))
	c.mu.Unlock()
	out := make([]llm.Response, len(reqs))
	for i := range out {
		out[i] = llm.Response{Text: "0123456789"}
	}
	return out, nil
}

// TestBatchFate: a grouped dispatch draws one fate — it fails or
// truncates as a unit, and forwards to the inner batch client otherwise.
func TestBatchFate(t *testing.T) {
	inner := &batchClient{}
	inj := New(Spec{Seed: 3, TruncateRate: 1})
	client := inj.Client(inner).(llm.BatchClient)
	resps, err := client.CompleteBatch(context.Background(), make([]llm.Request, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		if r.Text != "01234" {
			t.Fatalf("batch member %d not truncated with the batch: %q", i, r.Text)
		}
	}
	if len(inner.batches) != 1 || inner.batches[0] != 3 {
		t.Fatalf("batch not forwarded as a unit: %v", inner.batches)
	}

	inj.Set(Spec{Seed: 3, Outages: []Window{{StartMS: 0, EndMS: 60_000}}})
	if _, err := client.CompleteBatch(context.Background(), make([]llm.Request, 2)); !errors.Is(err, llm.ErrTransient) {
		t.Fatalf("batch during an outage: want transient rejection, got %v", err)
	}
}
