// Package resilience makes model-backed serving survive a flaky backend:
// retry with exponential backoff and full jitter (honoring context
// deadlines and Retry-After-style hints), a per-backend circuit breaker
// (closed → open → half-open with a bounded probe budget), and
// per-call-class attempt timeouts, composed into an llm.Client middleware
// that slots into the internal/llm stack between singleflight and the
// batcher.
//
// The paper's thesis is that an LLM analytics system is a service built
// on slow, rate-limited, failure-prone model calls; this package is the
// defense layer that turns those failures into bounded retries, fast
// fails, and degradable errors instead of hung requests and 500s. The
// serving layer tests errors with Unavailable to decide whether a
// retrieval-only degraded answer applies, and exposes breaker state on
// /stats and /healthz.
//
// Concurrency: Retrier, Breaker, and Middleware are all safe for
// concurrent use. The Breaker serializes state transitions under one
// mutex; calls admitted while closed that finish after a trip are
// absorbed without corrupting half-open probe accounting.
package resilience
