package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestBackoffSeededDeterminism pins the reproducibility contract: two
// retriers built from the same policy produce identical jitter schedules,
// and a different seed produces a different one.
func TestBackoffSeededDeterminism(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 500 * time.Millisecond, Seed: 42}
	a, b := NewRetrier(p), NewRetrier(p)
	var same []time.Duration
	for attempt := 1; attempt <= 8; attempt++ {
		da, db := a.Backoff(attempt, 0), b.Backoff(attempt, 0)
		if da != db {
			t.Fatalf("attempt %d: same-seed retriers diverged: %s vs %s", attempt, da, db)
		}
		same = append(same, da)
	}

	p.Seed = 43
	c := NewRetrier(p)
	diverged := false
	for attempt := 1; attempt <= 8; attempt++ {
		if c.Backoff(attempt, 0) != same[attempt-1] {
			diverged = true
		}
	}
	if !diverged {
		t.Error("a different seed produced the identical 8-step schedule")
	}
}

// TestBackoffEnvelope checks full jitter stays inside its ceiling — the
// exponential ramp capped by MaxDelay — and that the ramp actually grows.
func TestBackoffEnvelope(t *testing.T) {
	p := Policy{BaseDelay: 8 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Seed: 7}
	r := NewRetrier(p)
	for attempt := 1; attempt <= 20; attempt++ {
		ceil := p.MaxDelay
		if shift := attempt - 1; shift < 63 {
			if d := p.BaseDelay << shift; d > 0 && d < ceil {
				ceil = d
			}
		}
		for i := 0; i < 50; i++ {
			if d := r.Backoff(attempt, 0); d < 0 || d > ceil {
				t.Fatalf("attempt %d: backoff %s outside [0, %s]", attempt, d, ceil)
			}
		}
	}
}

// TestBackoffHintFloor: a Retry-After hint floors the draw — the backend
// is never probed sooner than it asked.
func TestBackoffHintFloor(t *testing.T) {
	r := NewRetrier(Policy{BaseDelay: time.Millisecond, MaxDelay: 200 * time.Millisecond, Seed: 1})
	hint := 150 * time.Millisecond
	for i := 0; i < 100; i++ {
		if d := r.Backoff(1, hint); d < hint {
			t.Fatalf("backoff %s undercut the %s Retry-After hint", d, hint)
		}
	}
}

// TestWaitHonorsDeadline: a backoff that cannot fit the remaining
// deadline fails immediately instead of idling until the context fires.
func TestWaitHonorsDeadline(t *testing.T) {
	r := NewRetrier(Policy{BaseDelay: time.Minute, MaxDelay: time.Minute, Seed: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	waited, err := r.Wait(ctx, 1, 45*time.Second)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if waited != 0 {
		t.Errorf("reported %s waited on an immediate give-up", waited)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Errorf("give-up took %s; it must not sleep toward the deadline", elapsed)
	}
}

// TestWaitBackendGone: a hint beyond MaxDelay means the backend announced
// an absence longer than the policy's patience — Wait refuses instantly.
func TestWaitBackendGone(t *testing.T) {
	r := NewRetrier(Policy{BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond, Seed: 1})
	start := time.Now()
	_, err := r.Wait(context.Background(), 1, 2*time.Minute)
	if !errors.Is(err, ErrBackendGone) {
		t.Fatalf("want ErrBackendGone, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Errorf("ErrBackendGone took %s; it must be immediate", elapsed)
	}
}

// TestWaitCanceledContext: an already-dead context never sleeps.
func TestWaitCanceledContext(t *testing.T) {
	r := NewRetrier(Policy{Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Wait(ctx, 1, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
}

// TestRetryAfterHint walks the carrier out of a wrapped chain.
func TestRetryAfterHint(t *testing.T) {
	base := &circuitOpenError{after: 1500 * time.Millisecond}
	wrapped := errorsJoinLike(base)
	hint, ok := RetryAfterHint(wrapped)
	if !ok || hint != 1500*time.Millisecond {
		t.Fatalf("hint = %s, %v; want 1.5s, true", hint, ok)
	}
	if _, ok := RetryAfterHint(errors.New("plain")); ok {
		t.Error("plain error reported a Retry-After hint")
	}
}

func errorsJoinLike(err error) error {
	return &wrapErr{err}
}

type wrapErr struct{ inner error }

func (w *wrapErr) Error() string { return "wrapped: " + w.inner.Error() }
func (w *wrapErr) Unwrap() error { return w.inner }
