package resilience

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Policy configures retry behavior. Zero values pick defaults.
type Policy struct {
	// MaxAttempts is the total number of tries, including the first
	// (default 3).
	MaxAttempts int
	// BaseDelay is the backoff ceiling before the first retry; it doubles
	// per attempt (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff ceiling (default 2s).
	MaxDelay time.Duration
	// Seed drives the jitter stream, so retry schedules are reproducible
	// in tests and fault-injection runs.
	Seed int64
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.MaxDelay < p.BaseDelay {
		p.MaxDelay = p.BaseDelay
	}
	return p
}

// Retrier computes full-jitter exponential backoff waits. The jitter is
// drawn from a seeded stream so a given retrier produces a reproducible
// schedule; "full jitter" (uniform in [0, ceiling]) is what decorrelates
// a thundering herd of retriers hammering a recovering backend.
type Retrier struct {
	policy Policy

	mu  sync.Mutex
	rng *rand.Rand
}

// NewRetrier builds a retrier for the policy.
func NewRetrier(p Policy) *Retrier {
	p = p.withDefaults()
	return &Retrier{policy: p, rng: rand.New(rand.NewSource(p.Seed))}
}

// MaxAttempts returns the policy's total attempt budget.
func (r *Retrier) MaxAttempts() int { return r.policy.MaxAttempts }

// Backoff returns the wait before the next try, given how many attempts
// have already failed (attempt ≥ 1). The result is uniform in
// [0, min(BaseDelay·2^(attempt-1), MaxDelay)], floored by hint — the
// Retry-After-style backend hint (0 = none): a backend that says "come
// back in 2s" is not probed sooner just because the jitter rolled low.
func (r *Retrier) Backoff(attempt int, hint time.Duration) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	ceil := r.policy.MaxDelay
	// Shift only while below the cap: BaseDelay<<k overflows for large k.
	if shift := attempt - 1; shift < 63 {
		if d := r.policy.BaseDelay << shift; d > 0 && d < ceil {
			ceil = d
		}
	}
	r.mu.Lock()
	wait := time.Duration(r.rng.Int63n(int64(ceil) + 1))
	r.mu.Unlock()
	if hint > wait {
		wait = hint
	}
	return wait
}

// ErrBackendGone is returned by Wait when the backend's Retry-After hint
// exceeds the policy's MaxDelay: the backend has announced it is down for
// longer than this call is willing to idle, so retrying inside the call
// is pointless — fail now and let the serving layer degrade (the hint
// still propagates to clients as a Retry-After header).
var ErrBackendGone = errors.New("resilience: backend retry hint exceeds the policy's max delay")

// Wait sleeps the attempt's backoff, never past ctx's deadline. It
// returns how long it actually waited and a non-nil error when the wait
// cannot (or should not) happen: the context ended, the backoff does not
// fit the remaining deadline, or the backend hint exceeds the policy's
// patience (ErrBackendGone). Callers treat any Wait error as "stop
// retrying, surface the last real failure".
func (r *Retrier) Wait(ctx context.Context, attempt int, hint time.Duration) (time.Duration, error) {
	if hint > r.policy.MaxDelay {
		return 0, ErrBackendGone
	}
	d := r.Backoff(attempt, hint)
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if d <= 0 {
		return 0, nil
	}
	if deadline, ok := ctx.Deadline(); ok {
		if time.Until(deadline) < d {
			// Sleeping on would just convert a retryable failure into a
			// deadline error after pointless idling; give up immediately so
			// the caller can fall back while its deadline still has room.
			return 0, context.DeadlineExceeded
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	start := time.Now()
	select {
	case <-t.C:
		return d, nil
	case <-ctx.Done():
		return time.Since(start), ctx.Err()
	}
}

// retryAfterCarrier is implemented by errors that carry a backend "come
// back later" hint (injected faults, circuit-open errors, rate limits).
type retryAfterCarrier interface{ RetryAfter() time.Duration }

// RetryAfterHint extracts a Retry-After-style hint from an error chain
// (false when the chain carries none).
func RetryAfterHint(err error) (time.Duration, bool) {
	var c retryAfterCarrier
	if errors.As(err, &c) {
		if after := c.RetryAfter(); after > 0 {
			return after, true
		}
	}
	return 0, false
}
