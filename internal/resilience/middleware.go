package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"aryn/internal/llm"
)

// Options configures the Middleware. Zero values pick defaults.
type Options struct {
	// Retry is the backoff policy for transient failures.
	Retry Policy
	// Breaker tunes the per-backend circuit breaker.
	Breaker BreakerConfig
	// Timeouts bounds one backend attempt per call class (llm.CallClass:
	// "plan", "extract", "filter", "summarize", "answer", "generic").
	// Classes absent here use DefaultTimeout.
	Timeouts map[string]time.Duration
	// DefaultTimeout is the attempt budget for unlisted classes (default
	// 10s; negative disables attempt timeouts entirely).
	DefaultTimeout time.Duration
}

// Stats is the /stats snapshot of the middleware.
type Stats struct {
	Breaker BreakerStats `json:"breaker"`
	// Retries counts backend attempts beyond the first.
	Retries int64 `json:"retries"`
	// RetryWaitMS is cumulative time spent in backoff waits.
	RetryWaitMS int64 `json:"retry_wait_ms"`
	// AttemptTimeouts counts attempts cut off by their per-class budget
	// (the caller's own deadline is not counted — that is the caller
	// giving up, not the backend wedging).
	AttemptTimeouts int64 `json:"attempt_timeouts"`
}

// Middleware is the llm.Client resilience layer: per-call-class attempt
// timeouts, breaker-gated admission, and jittered retries of transient
// failures. In the canonical stack it sits between singleflight and the
// batcher, so cache hits never touch the breaker and retried attempts
// re-enter batching.
type Middleware struct {
	inner    llm.Client
	retrier  *Retrier
	breaker  *Breaker
	timeouts map[string]time.Duration
	defaultT time.Duration

	retries         atomic.Int64
	retryWaitNS     atomic.Int64
	attemptTimeouts atomic.Int64
}

// Wrap builds the middleware around inner.
func Wrap(inner llm.Client, opts Options) *Middleware {
	d := opts.DefaultTimeout
	if d == 0 {
		d = 10 * time.Second
	}
	if d < 0 {
		d = 0
	}
	return &Middleware{
		inner:    inner,
		retrier:  NewRetrier(opts.Retry),
		breaker:  NewBreaker(opts.Breaker),
		timeouts: opts.Timeouts,
		defaultT: d,
	}
}

// Complete runs one completion with breaker admission, a per-class
// attempt timeout, and jittered retries of transient failures. The
// caller's context deadline is always honored: backoff never sleeps past
// it, and a call that dies with the caller is Discarded from breaker
// accounting rather than counted against the backend.
func (m *Middleware) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	class := llm.CallClass(req)
	budget := m.defaultT
	if t, ok := m.timeouts[class]; ok {
		budget = t
		if budget < 0 {
			budget = 0
		}
	}

	var lastErr error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return llm.Response{}, lastErr
			}
			return llm.Response{}, err
		}
		if err := m.breaker.Allow(); err != nil {
			return llm.Response{}, fmt.Errorf("%s call: %w", class, err)
		}
		actx := ctx
		cancel := func() {}
		if budget > 0 {
			actx, cancel = context.WithTimeout(ctx, budget)
		}
		resp, err := m.inner.Complete(actx, req)
		cancel()
		if err == nil {
			m.breaker.Success()
			return resp, nil
		}
		if ctx.Err() != nil {
			// The caller is gone; the outcome says nothing about backend
			// health.
			m.breaker.Discard()
			if lastErr != nil {
				return llm.Response{}, lastErr
			}
			return llm.Response{}, err
		}
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			// The per-attempt budget fired while the caller is still
			// waiting: a wedged backend looks like any other transient
			// failure from here up.
			m.attemptTimeouts.Add(1)
			err = fmt.Errorf("%s attempt timed out after %s: %w", class, budget, llm.ErrTransient)
		}
		if !errors.Is(err, llm.ErrTransient) {
			// The backend answered with an application-level error
			// (context too long, refusal surfaced as error): it is
			// reachable, so the breaker hears success.
			m.breaker.Success()
			return llm.Response{}, err
		}
		m.breaker.Failure()
		lastErr = err
		if attempt >= m.retrier.MaxAttempts() {
			return llm.Response{}, lastErr
		}
		hint, _ := RetryAfterHint(err)
		waited, werr := m.retrier.Wait(ctx, attempt, hint)
		m.retryWaitNS.Add(int64(waited))
		if werr != nil {
			// The deadline ate the backoff, or the backend announced an
			// absence longer than our patience; surface the last real
			// failure rather than a bare context error.
			return llm.Response{}, lastErr
		}
		m.retries.Add(1)
	}
}

// Name identifies the backing model.
func (m *Middleware) Name() string { return m.inner.Name() }

// Inner exposes the wrapped client so llm.StatsOf keeps walking the
// middleware chain.
func (m *Middleware) Inner() llm.Client { return m.inner }

// Breaker returns the circuit breaker (for health endpoints and tests).
func (m *Middleware) Breaker() *Breaker { return m.breaker }

// Stats snapshots the middleware counters.
func (m *Middleware) Stats() Stats {
	return Stats{
		Breaker:         m.breaker.Stats(),
		Retries:         m.retries.Load(),
		RetryWaitMS:     time.Duration(m.retryWaitNS.Load()).Milliseconds(),
		AttemptTimeouts: m.attemptTimeouts.Load(),
	}
}

// Unavailable reports whether err means "the model backend is
// unavailable" — a circuit-open fast fail or an exhausted transient
// failure — i.e. the class of errors the serving layer degrades on
// (retrieval-only answers) instead of 500ing. Application-level errors
// (invalid plans, context overflows) are not unavailability.
func Unavailable(err error) bool {
	return errors.Is(err, ErrCircuitOpen) || errors.Is(err, llm.ErrTransient)
}

var _ llm.Client = (*Middleware)(nil)
