package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"aryn/internal/llm"
)

func fastOpts() Options {
	return Options{
		Retry: Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 1},
	}
}

// TestMiddlewareRetriesTransient: a transient failure is retried and the
// eventual success is returned; the stats record the extra attempt.
func TestMiddlewareRetriesTransient(t *testing.T) {
	inner := &llm.Scripted{
		Errs:      []error{fmt.Errorf("blip: %w", llm.ErrTransient), nil},
		Responses: []llm.Response{{Text: "ignored"}, {Text: "ok"}},
	}
	m := Wrap(inner, fastOpts())
	resp, err := m.Complete(context.Background(), llm.Request{Prompt: "hello"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text != "ok" {
		t.Fatalf("answer %q, want the post-retry response", resp.Text)
	}
	if calls := inner.Calls(); calls != 2 {
		t.Errorf("backend saw %d calls, want 2 (one retry)", calls)
	}
	if st := m.Stats(); st.Retries != 1 || st.Breaker.State != "closed" {
		t.Errorf("stats = %+v, want 1 retry and a closed breaker", st)
	}
}

// TestMiddlewareNoRetryOnApplicationError: a non-transient error returns
// immediately and counts as backend health (the backend answered).
func TestMiddlewareNoRetryOnApplicationError(t *testing.T) {
	appErr := errors.New("schema mismatch")
	inner := &llm.Scripted{Errs: []error{appErr, appErr, appErr}}
	m := Wrap(inner, fastOpts())
	_, err := m.Complete(context.Background(), llm.Request{Prompt: "hello"})
	if !errors.Is(err, appErr) {
		t.Fatalf("want the application error, got %v", err)
	}
	if calls := inner.Calls(); calls != 1 {
		t.Errorf("backend saw %d calls, want 1 (no retries of application errors)", calls)
	}
	if st := m.Stats(); st.Retries != 0 || st.Breaker.ConsecutiveFailures != 0 {
		t.Errorf("stats = %+v; application errors must not count against the backend", st)
	}
}

// TestMiddlewareBreakerFastFail: once the circuit opens, calls fail
// without touching the backend, and the error is Unavailable.
func TestMiddlewareBreakerFastFail(t *testing.T) {
	inner := &llm.Scripted{Errs: []error{
		llm.ErrTransient, llm.ErrTransient, llm.ErrTransient,
		llm.ErrTransient, llm.ErrTransient, llm.ErrTransient,
	}}
	opts := fastOpts()
	opts.Breaker = BreakerConfig{FailureThreshold: 2, ProbeInterval: time.Hour}
	m := Wrap(inner, opts)

	if _, err := m.Complete(context.Background(), llm.Request{Prompt: "hi"}); err == nil {
		t.Fatal("expected failure against an all-transient backend")
	}
	callsAfterFirst := inner.Calls()
	if callsAfterFirst < 2 {
		t.Fatalf("breaker tripped after %d attempts, threshold is 2", callsAfterFirst)
	}
	_, err := m.Complete(context.Background(), llm.Request{Prompt: "hi"})
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen from an open circuit, got %v", err)
	}
	if !Unavailable(err) {
		t.Error("circuit-open error not classified Unavailable")
	}
	if inner.Calls() != callsAfterFirst {
		t.Errorf("open circuit still reached the backend (%d → %d calls)", callsAfterFirst, inner.Calls())
	}
	if hint, ok := RetryAfterHint(err); !ok || hint <= 0 {
		t.Errorf("circuit-open error carries no Retry-After hint (%v, %v)", hint, ok)
	}
}

// slowClient wedges until its context dies.
type slowClient struct{}

func (slowClient) Complete(ctx context.Context, _ llm.Request) (llm.Response, error) {
	<-ctx.Done()
	return llm.Response{}, ctx.Err()
}
func (slowClient) Name() string { return "slow" }

// TestMiddlewareAttemptTimeout: a wedged backend is cut off by the
// per-class attempt budget and surfaces as a transient failure while the
// caller's own deadline is untouched.
func TestMiddlewareAttemptTimeout(t *testing.T) {
	opts := fastOpts()
	opts.Retry.MaxAttempts = 1
	opts.DefaultTimeout = 10 * time.Millisecond
	m := Wrap(slowClient{}, opts)

	start := time.Now()
	_, err := m.Complete(context.Background(), llm.Request{Prompt: "hang"})
	if err == nil {
		t.Fatal("expected a timeout failure")
	}
	if !errors.Is(err, llm.ErrTransient) {
		t.Fatalf("attempt timeout must look transient, got %v", err)
	}
	if !Unavailable(err) {
		t.Error("attempt-timeout error not classified Unavailable")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("attempt took %s against a 10ms budget", elapsed)
	}
	if st := m.Stats(); st.AttemptTimeouts != 1 {
		t.Errorf("stats = %+v, want 1 attempt timeout", st)
	}
}

// TestMiddlewareCallerCancellation: when the caller's context dies
// mid-call, the outcome is discarded from breaker accounting.
func TestMiddlewareCallerCancellation(t *testing.T) {
	opts := fastOpts()
	opts.DefaultTimeout = -1 // no attempt budget: only the caller's deadline
	m := Wrap(slowClient{}, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := m.Complete(ctx, llm.Request{Prompt: "hang"}); err == nil {
		t.Fatal("expected failure when the caller dies")
	}
	if st := m.Stats(); st.Breaker.ConsecutiveFailures != 0 {
		t.Errorf("caller-cancelled call counted against the backend: %+v", st)
	}
}

// goneError is a transient failure whose Retry-After exceeds any policy
// patience — the scripted outage shape.
type goneError struct{ after time.Duration }

func (e *goneError) Error() string             { return "backend down for a while" }
func (e *goneError) Unwrap() error             { return llm.ErrTransient }
func (e *goneError) RetryAfter() time.Duration { return e.after }

// TestMiddlewareGivesUpOnLongRetryAfter: a backend announcing a long
// outage is not retried within the call — the middleware fails fast so
// the serving layer can degrade, instead of idling out the caller's
// deadline.
func TestMiddlewareGivesUpOnLongRetryAfter(t *testing.T) {
	inner := &llm.Scripted{Errs: []error{&goneError{after: 2 * time.Minute}}}
	m := Wrap(inner, fastOpts())
	start := time.Now()
	_, err := m.Complete(context.Background(), llm.Request{Prompt: "hi"})
	if err == nil || !Unavailable(err) {
		t.Fatalf("want an Unavailable failure, got %v", err)
	}
	if calls := inner.Calls(); calls != 1 {
		t.Errorf("backend saw %d calls; a long Retry-After must suppress in-call retries", calls)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("give-up took %s, want immediate", elapsed)
	}
	if hint, ok := RetryAfterHint(err); !ok || hint != 2*time.Minute {
		t.Errorf("surfaced error lost the Retry-After hint (%v, %v)", hint, ok)
	}
}

// TestMiddlewarePerClassTimeouts: the call class picks its own budget.
func TestMiddlewarePerClassTimeouts(t *testing.T) {
	opts := fastOpts()
	opts.Retry.MaxAttempts = 1
	opts.DefaultTimeout = time.Hour
	opts.Timeouts = map[string]time.Duration{"plan": 10 * time.Millisecond}
	m := Wrap(slowClient{}, opts)

	start := time.Now()
	_, err := m.Complete(context.Background(), llm.Request{Prompt: llm.TaskPlan + "\nquestion"})
	if err == nil {
		t.Fatal("expected the plan-class budget to fire")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("plan call ran %s against a 10ms class budget", elapsed)
	}
}

// TestUnavailableClassification pins the degradable error class.
func TestUnavailableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{fmt.Errorf("wrapped: %w", ErrCircuitOpen), true},
		{fmt.Errorf("wrapped: %w", llm.ErrTransient), true},
		{errors.New("invalid plan"), false},
		{context.DeadlineExceeded, false},
		{nil, false},
	}
	for _, c := range cases {
		if got := Unavailable(c.err); got != c.want {
			t.Errorf("Unavailable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
