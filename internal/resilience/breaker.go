package resilience

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// State is a circuit breaker's position.
type State int

const (
	// Closed: calls flow; consecutive transient failures are counted.
	Closed State = iota
	// Open: calls fast-fail with ErrCircuitOpen until the probe interval
	// elapses.
	Open
	// HalfOpen: a bounded budget of probe calls tests the backend;
	// enough successes close the circuit, any failure reopens it.
	HalfOpen
)

// String renders the state for /stats and traces.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ErrCircuitOpen marks a call rejected without reaching the backend
// because the circuit is open (or the half-open probe budget is spent).
// The concrete error carries a RetryAfter hint: the time until the next
// probe window.
var ErrCircuitOpen = errors.New("resilience: circuit open")

// circuitOpenError is the rejection returned by Allow.
type circuitOpenError struct{ after time.Duration }

func (e *circuitOpenError) Error() string {
	return fmt.Sprintf("resilience: circuit open; next probe in %s", e.after.Round(time.Millisecond))
}
func (e *circuitOpenError) Unwrap() error             { return ErrCircuitOpen }
func (e *circuitOpenError) RetryAfter() time.Duration { return e.after }

// BreakerConfig tunes the circuit breaker. Zero values pick defaults.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive transient failures trip
	// the circuit (default 5).
	FailureThreshold int
	// ProbeInterval is how long the circuit stays open before admitting
	// probes (default 2s). The serving acceptance contract — "the breaker
	// returns to closed within one probe interval after an outage ends" —
	// is measured against this.
	ProbeInterval time.Duration
	// ProbeBudget bounds concurrent half-open probes (default 2), so a
	// recovering backend is not instantly re-saturated by the full
	// request rate.
	ProbeBudget int
	// SuccessThreshold is how many probe successes close the circuit
	// (default 2).
	SuccessThreshold int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeBudget <= 0 {
		c.ProbeBudget = 2
	}
	if c.SuccessThreshold <= 0 {
		c.SuccessThreshold = 2
	}
	return c
}

// BreakerStats is the /stats snapshot of one breaker.
type BreakerStats struct {
	State string `json:"state"`
	// ConsecutiveFailures is the current closed-state failure streak.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// Opens counts closed/half-open → open transitions.
	Opens int64 `json:"opens"`
	// Rejections counts calls fast-failed without reaching the backend.
	Rejections int64 `json:"rejections"`
	// Probes counts half-open calls admitted to test the backend.
	Probes int64 `json:"probes"`
	// ProbeIntervalMS is the configured open → half-open delay; clients
	// (chaos scenarios) read it to bound their recovery deadline.
	ProbeIntervalMS int64 `json:"probe_interval_ms"`
	// OpenRemainingMS is the time until the next probe window (0 unless
	// open).
	OpenRemainingMS int64 `json:"open_remaining_ms,omitempty"`
}

// Breaker is a per-backend circuit breaker. Allow gates each call;
// exactly one of Success, Failure, or Discard must follow every admitted
// call.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time // test clock

	mu        sync.Mutex
	state     State
	fails     int // consecutive transient failures (closed)
	successes int // probe successes (half-open)
	probes    int // in-flight probes (half-open)
	openedAt  time.Time

	opens      int64
	rejections int64
	probeCount int64
}

// NewBreaker builds a breaker for the config.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), now: time.Now}
}

// Allow reports whether a call may proceed. A nil return admits the call
// (and, in half-open, claims a probe slot); a non-nil return is an
// ErrCircuitOpen rejection carrying a RetryAfter hint.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return nil
	case Open:
		elapsed := b.now().Sub(b.openedAt)
		if elapsed < b.cfg.ProbeInterval {
			b.rejections++
			return &circuitOpenError{after: b.cfg.ProbeInterval - elapsed}
		}
		// Probe window reached: move to half-open and admit this call as
		// the first probe.
		b.state = HalfOpen
		b.successes = 0
		b.probes = 0
		fallthrough
	default: // HalfOpen
		if b.probes >= b.cfg.ProbeBudget {
			b.rejections++
			return &circuitOpenError{after: b.cfg.ProbeInterval}
		}
		b.probes++
		b.probeCount++
		return nil
	}
}

// Success records an admitted call that reached the backend and got an
// answer (application-level errors included: a backend that answers is
// healthy, whatever it says).
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.fails = 0
	case HalfOpen:
		b.releaseProbe()
		b.successes++
		if b.successes >= b.cfg.SuccessThreshold {
			b.state = Closed
			b.fails = 0
		}
	case Open:
		// A call admitted before the trip finished late; its verdict is
		// stale.
	}
}

// Failure records an admitted call that failed transiently (backend
// unreachable, timed out, rate-limited).
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.trip()
		}
	case HalfOpen:
		b.releaseProbe()
		// Any probe failure reopens: the backend is not back yet.
		b.trip()
	case Open:
	}
}

// Discard releases an admitted call whose outcome says nothing about
// backend health (the caller canceled or its deadline fired mid-call).
func (b *Breaker) Discard() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen {
		b.releaseProbe()
	}
}

// trip opens the circuit (callers hold b.mu).
func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.now()
	b.opens++
	b.fails = 0
	b.successes = 0
	b.probes = 0
}

// releaseProbe returns a half-open probe slot (callers hold b.mu). The
// guard absorbs calls admitted under a previous state that report after
// a transition.
func (b *Breaker) releaseProbe() {
	if b.probes > 0 {
		b.probes--
	}
}

// State returns the current position.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats snapshots the breaker for /stats.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BreakerStats{
		State:               b.state.String(),
		ConsecutiveFailures: b.fails,
		Opens:               b.opens,
		Rejections:          b.rejections,
		Probes:              b.probeCount,
		ProbeIntervalMS:     b.cfg.ProbeInterval.Milliseconds(),
	}
	if b.state == Open {
		if remain := b.cfg.ProbeInterval - b.now().Sub(b.openedAt); remain > 0 {
			st.OpenRemainingMS = remain.Milliseconds()
		}
	}
	return st
}
