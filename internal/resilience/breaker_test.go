package resilience

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fakeClock drives the breaker's probe-interval arithmetic without
// wall-clock sleeps.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testBreaker(cfg BreakerConfig) (*Breaker, *fakeClock) {
	b := NewBreaker(cfg)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

// TestBreakerLifecycle walks the full closed → open → half-open → closed
// loop, including the reopen-on-probe-failure edge.
func TestBreakerLifecycle(t *testing.T) {
	cfg := BreakerConfig{FailureThreshold: 3, ProbeInterval: time.Second, ProbeBudget: 2, SuccessThreshold: 2}
	b, clk := testBreaker(cfg)

	// Closed: failures below the threshold keep calls flowing.
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected call %d: %v", i, err)
		}
		b.Failure()
	}
	if st := b.State(); st != Closed {
		t.Fatalf("state %s after 2/3 failures, want closed", st)
	}
	// A success resets the streak.
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Success()
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Failure()
	}
	if st := b.State(); st != Open {
		t.Fatalf("state %s after threshold failures, want open", st)
	}

	// Open: rejections carry a RetryAfter hint bounded by the interval.
	err := b.Allow()
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker admitted a call (err = %v)", err)
	}
	if hint, ok := RetryAfterHint(err); !ok || hint <= 0 || hint > cfg.ProbeInterval {
		t.Fatalf("rejection hint = %v, %v; want (0, %s]", hint, ok, cfg.ProbeInterval)
	}

	// Probe window: the budget bounds admitted probes.
	clk.advance(cfg.ProbeInterval + time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("first probe rejected: %v", err)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("third probe admitted beyond budget 2 (err = %v)", err)
	}
	if st := b.State(); st != HalfOpen {
		t.Fatalf("state %s inside probe window, want half-open", st)
	}

	// A probe failure reopens immediately.
	b.Failure()
	if st := b.State(); st != Open {
		t.Fatalf("state %s after probe failure, want open", st)
	}

	// Next window: enough successes close the circuit.
	clk.advance(cfg.ProbeInterval + time.Millisecond)
	for i := 0; i < cfg.SuccessThreshold; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("probe %d rejected: %v", i, err)
		}
		b.Success()
	}
	if st := b.State(); st != Closed {
		t.Fatalf("state %s after %d probe successes, want closed", st, cfg.SuccessThreshold)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker rejected traffic after recovery: %v", err)
	}
	b.Success()

	stats := b.Stats()
	if stats.State != "closed" || stats.Opens != 2 || stats.Rejections == 0 || stats.Probes == 0 {
		t.Errorf("stats after the lifecycle: %+v", stats)
	}
}

// TestBreakerDiscard: a discarded probe frees its slot without a verdict.
func TestBreakerDiscard(t *testing.T) {
	b, clk := testBreaker(BreakerConfig{FailureThreshold: 1, ProbeInterval: time.Second, ProbeBudget: 1, SuccessThreshold: 1})
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Failure() // trip
	clk.advance(time.Second + time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.Discard() // caller died mid-probe: no verdict
	if st := b.State(); st != HalfOpen {
		t.Fatalf("state %s after discarded probe, want half-open", st)
	}
	// The freed slot admits the next probe in the same window.
	if err := b.Allow(); err != nil {
		t.Fatalf("slot not released by Discard: %v", err)
	}
	b.Success()
	if st := b.State(); st != Closed {
		t.Fatalf("state %s after probe success, want closed", st)
	}
}

// TestBreakerConcurrentHammer drives every transition from many
// goroutines at once; run under -race this is the data-race gate for the
// Allow/Success/Failure/Discard protocol.
func TestBreakerConcurrentHammer(t *testing.T) {
	b, clk := testBreaker(BreakerConfig{FailureThreshold: 3, ProbeInterval: time.Millisecond, ProbeBudget: 2, SuccessThreshold: 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				if err := b.Allow(); err != nil {
					if !errors.Is(err, ErrCircuitOpen) {
						t.Errorf("unexpected rejection: %v", err)
						return
					}
					continue
				}
				switch rng.Intn(3) {
				case 0:
					b.Success()
				case 1:
					b.Failure()
				default:
					b.Discard()
				}
				if i%50 == 0 {
					clk.advance(time.Millisecond)
				}
			}
		}(int64(g))
	}
	wg.Wait()

	// Whatever the final state, the accounting must be coherent and the
	// breaker must still recover: advance past the interval and feed
	// successes until it closes.
	for i := 0; i < 100 && b.State() != Closed; i++ {
		clk.advance(2 * time.Millisecond)
		if err := b.Allow(); err == nil {
			b.Success()
		}
	}
	if st := b.State(); st != Closed {
		t.Fatalf("breaker wedged %s after the hammer; probes cannot close it", st)
	}
}
