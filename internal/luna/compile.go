package luna

import (
	"context"
	"fmt"
	"strings"
	"time"

	"aryn/internal/cost"
	"aryn/internal/docmodel"
	"aryn/internal/docset"
	"aryn/internal/index"
	"aryn/internal/llm"
)

// wallclock is the package's single sanctioned wall-clock read, feeding
// the wall_ms figure in EXPLAIN ANALYZE output. Execution timing is
// observability, never answer bytes; routing it through one seam means
// the determinism analyzer flags any new wall-clock read where it is
// introduced.
var wallclock = time.Now //lint:allow determinism trace-only timing seam; wall_ms never reaches answer bytes

// Executor lowers validated logical plans onto Sycamore DocSet pipelines
// and derives typed answers from the terminal operator (§6.1 Execution).
//
// Independent branches of the physical plan — join build sides, diamond
// prefixes shared by several consumers, extra roots of a multi-root DAG —
// are compiled into docset.Tasks and started together when Run begins, so
// they execute concurrently instead of lazily in topological order. A
// per-query worker budget (docset.Context.QueryScope) splits the
// context's Parallelism across every concurrently-running node, so one
// query draws the same worker footprint from the server's shared pool no
// matter how many branches its plan has.
type Executor struct {
	// EC is the Sycamore execution context (LLM, embedder, parallelism).
	EC *docset.Context
	// Store is the index the plan roots read from.
	Store *index.Store
	// Serial disables branch concurrency: scheduled subtrees run to
	// completion one at a time before the output pipeline executes. For
	// benchmarking (lunabench -joins) and debugging; output is
	// byte-identical either way.
	Serial bool
}

// Result is one executed query: the plans, the typed answer, and the full
// lineage trace for the drill-down UI (§6.2).
type Result struct {
	Question  string
	Plan      *LogicalPlan // as emitted by the planner (or submitted by the user)
	Rewritten *LogicalPlan // after rule-based optimization
	// Optimized is the cost-optimized plan that actually executed (nil
	// when the optimize phase is off). Exec node IDs refer to it.
	Optimized *LogicalPlan
	// Cost/CostOptimized are the cost model's pre-execution estimates for
	// the rewritten and optimized plans (nil without a cost model).
	Cost          *cost.PlanEstimate
	CostOptimized *cost.PlanEstimate
	Answer        Answer
	// Trace is the merged lineage of every pipeline the query ran: the
	// output pipeline plus each scheduled branch, each operator exactly
	// once.
	Trace *docset.Trace
	// Compiled is the physical Sycamore plan rendering.
	Compiled string
	// Docs are the terminal documents (for drill-down).
	Docs []*docmodel.Document
	// Exec is the EXPLAIN ANALYZE view: per-plan-node runtime metrics
	// aggregated from the trace (wall/busy time, docs in/out, LLM
	// calls/tokens/cache hits, retries).
	Exec *ExecDetail
	// LLM reports call-middleware activity (cache hits, singleflight
	// collapses, batches) across planning AND execution of this query;
	// nil when the client carries no middleware stack.
	LLM *llm.StackStats
}

// ExecutedPlan returns the plan the executor actually ran — the
// optimized plan when the optimize phase fired, the rule-rewritten plan
// otherwise. Exec's node IDs always refer to this plan, so EXPLAIN
// annotation must use it rather than Rewritten.
func (r *Result) ExecutedPlan() *LogicalPlan {
	if r.Optimized != nil {
		return r.Optimized
	}
	return r.Rewritten
}

// lowered is the physical form of a plan: the output DocSet pipeline, the
// independently-schedulable branch tasks it depends on, plus the
// answer-shaping facts the terminal operator needs.
type lowered struct {
	ds *docset.DocSet
	// tasks are the plan's independent branches (join build sides, shared
	// diamond prefixes) in dependency order; Run starts them all when the
	// query begins so they overlap in wall-clock time.
	tasks []*docset.Task
	// terminal is the last answer-shaping operator on the path to the
	// output (pass-through operators like limit and distinct keep the
	// upstream terminal, matching the historical linear executor).
	terminal LogicalOp
	// keyField is the group key in effect at the output (for table and
	// top-k answer shaping), propagated through the DAG.
	keyField string
}

// lower compiles the DAG onto DocSet pipelines in topological order under
// the given execution context (Run passes a query-scoped context carrying
// the worker budget; Compile passes the bare context). Each node's DocSet
// is built from its inputs'; join lowers onto the physical docset join
// with its build side (the second input) wrapped as a schedulable task.
// count and fraction are answer-shaping terminals: they pass their input
// pipeline through untouched and are resolved after execution. Every
// node's stages are tagged with the node's ID so runtime traces aggregate
// back to plan nodes.
func (e *Executor) lower(ec *docset.Context, plan *LogicalPlan) (*lowered, error) {
	plan.normalize()
	if len(plan.Nodes) == 0 {
		return nil, fmt.Errorf("%w: empty plan", ErrInvalidPlan)
	}
	order, err := plan.topoOrder()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidPlan, err)
	}
	output := plan.Output
	if output == "" {
		return nil, fmt.Errorf("%w: plan has no output node", ErrInvalidPlan)
	}
	if plan.node(output) == nil {
		return nil, fmt.Errorf("%w: output %q names no node", ErrInvalidPlan, output)
	}

	sets := map[string]*docset.DocSet{}
	keys := map[string]string{}
	terminals := map[string]LogicalOp{}
	// Fan-out counts: a node consumed by several downstream operators (a
	// diamond) is materialized with Shared() so its subtree executes once,
	// not once per consumer.
	fanout := map[string]int{}
	for _, n := range plan.Nodes {
		for _, in := range n.Inputs {
			fanout[in]++
		}
	}
	input := func(n PlanNode, i int) (*docset.DocSet, error) {
		if len(n.Inputs) <= i {
			return nil, fmt.Errorf("%w: node %s: %s is missing input %d", ErrInvalidPlan, n.ID, n.Op, i)
		}
		ds := sets[n.Inputs[i]]
		if ds == nil {
			return nil, fmt.Errorf("%w: node %s: input %q not lowered", ErrInvalidPlan, n.ID, n.Inputs[i])
		}
		return ds, nil
	}

	var tasks []*docset.Task
	for _, idx := range order {
		n := plan.Nodes[idx]
		// Inherit answer-shaping facts from the primary input.
		if len(n.Inputs) > 0 {
			keys[n.ID] = keys[n.Inputs[0]]
			terminals[n.ID] = terminals[n.Inputs[0]]
		}
		switch n.Op {
		case OpGroupByAggregate, OpLLMCluster, OpTopK, OpProject,
			OpLLMGenerate, OpCount, OpFraction:
			terminals[n.ID] = n.LogicalOp
		}
		// base is the pipeline this node extends; Tag labels the stages
		// added beyond it with the node's ID.
		var base *docset.DocSet
		switch n.Op {
		case OpQueryDatabase, OpQueryVectorDatabase:
			if len(n.Inputs) != 0 {
				return nil, fmt.Errorf("%w: node %s: %s is a source and takes no inputs", ErrInvalidPlan, n.ID, n.Op)
			}
			root, rerr := e.root(ec, n.LogicalOp)
			if rerr != nil {
				return nil, rerr
			}
			sets[n.ID] = root
		case OpJoin:
			left, lerr := input(n, 0)
			if lerr != nil {
				return nil, lerr
			}
			right, rerr := input(n, 1)
			if rerr != nil {
				return nil, rerr
			}
			// The build side becomes its own scheduled branch: Run starts
			// it when the query begins, so it executes concurrently with
			// the probe side instead of after the probe has drained.
			build := docset.NewTask("join build["+n.Inputs[1]+"]", right)
			tasks = append(tasks, build)
			base = left
			sets[n.ID] = left.JoinTask(build, n.LeftKey, n.RightKey, n.Prefix,
				docset.JoinKind(joinKindOrDefault(n.JoinKind)))
		default:
			in, ierr := input(n, 0)
			if ierr != nil {
				return nil, ierr
			}
			base = in
			switch n.Op {
			case OpBasicFilter:
				sets[n.ID] = in.FilterProps(compileFilters(n.Filters))
			case OpLLMFilter:
				sets[n.ID] = in.LLMFilter(n.Question)
			case OpLLMFilterCascade:
				sets[n.ID] = in.LLMFilterCascade(n.Question, n.Low, n.High)
			case OpLLMExtract:
				sets[n.ID] = in.LLMExtract(n.Fields)
			case OpGroupByAggregate:
				sets[n.ID] = in.GroupByAggregate(n.Key, docset.AggKind(n.Agg), n.ValueField)
				key := n.Key
				if key == "" {
					key = "group"
				}
				keys[n.ID] = key
			case OpLLMCluster:
				sets[n.ID] = in.LLMCluster(n.K, nil, 17)
			case OpTopK:
				sets[n.ID] = in.TopK(n.Field, n.K)
			case OpLimit:
				sets[n.ID] = in.Limit(n.K)
			case opDistinct:
				sets[n.ID] = in.Distinct(n.Field)
			case OpProject:
				sets[n.ID] = in
			case OpLLMGenerate:
				sets[n.ID] = in.Summarize(n.Instruction)
			case OpCount, OpFraction:
				// Answer-shaping terminals: resolved post-execution over
				// the input pipeline's documents.
				if n.ID != output {
					return nil, fmt.Errorf("%w: node %s: %s must be the output node", ErrInvalidPlan, n.ID, n.Op)
				}
				sets[n.ID] = in
			default:
				return nil, fmt.Errorf("%w: node %s: unknown operator %q", ErrInvalidPlan, n.ID, n.Op)
			}
		}
		sets[n.ID] = sets[n.ID].Tag(base, n.ID)
		if fanout[n.ID] > 1 {
			// A diamond prefix: materialize once as a scheduled branch and
			// replay to every consumer.
			shared := sets[n.ID].ShareTask()
			tasks = append(tasks, shared)
			sets[n.ID] = shared.DocSet()
		}
	}
	return &lowered{
		ds:       sets[output],
		tasks:    tasks,
		terminal: terminals[output],
		keyField: keys[output],
	}, nil
}

// Compile lowers the plan and returns the physical Sycamore pipeline
// rendering without executing it — the cheap "inspect what the optimizer
// will run" path of the Plan API.
func (e *Executor) Compile(plan *LogicalPlan) (string, error) {
	low, err := e.lower(e.EC, plan)
	if err != nil {
		return "", err
	}
	return low.ds.PlanString(), nil
}

// Run executes the plan and shapes the answer. Scheduled branches (join
// build sides, shared diamond prefixes) start when execution begins and
// run concurrently with the output pipeline under the query's worker
// budget; with Serial set they run to completion one at a time first.
func (e *Executor) Run(ctx context.Context, plan *LogicalPlan) (*Result, error) {
	// One worker budget per query: every pipeline lowered under this
	// scope shares Parallelism busy-worker slots, so branch concurrency
	// never multiplies the query's footprint in the server's shared pool.
	qec := e.EC.QueryScope()
	low, err := e.lower(qec, plan)
	if err != nil {
		return nil, err
	}
	res := &Result{Rewritten: plan}
	res.Compiled = low.ds.PlanString()

	llmBefore, hasLLMStats := llm.StatsOf(qec.LLM)
	start := wallclock()
	// Branch goroutines run under a child context so an executor error
	// cancels them, and Join below guarantees none outlives the query.
	tctx, tcancel := context.WithCancel(ctx)
	defer tcancel()
	for _, t := range low.tasks {
		t.Start(tctx)
		if e.Serial {
			// Benchmark/debug mode: drain each branch before the next
			// starts (errors surface through the consumer below).
			t.Join()
		}
	}
	docs, trace, execErr := low.ds.Execute(tctx)
	tcancel()
	for _, t := range low.tasks {
		t.Join()
	}
	wall := time.Since(start)

	merged := &docset.Trace{Wall: wall}
	for _, t := range low.tasks {
		if tt := t.Trace(); tt != nil {
			merged.Nodes = append(merged.Nodes, tt.Nodes...)
		}
	}
	if trace != nil {
		merged.Nodes = append(merged.Nodes, trace.Nodes...)
	}
	if hasLLMStats {
		// One query-level middleware delta: per-branch deltas overlap in
		// time when branches run concurrently, so summing them would
		// double-count (the per-node counters in the trace attribute each
		// call exactly once).
		if after, ok := llm.StatsOf(qec.LLM); ok {
			delta := after.Sub(llmBefore)
			merged.LLM = &delta
		}
	}
	res.Trace = merged
	res.Docs = docs
	res.Exec = buildExecDetail(plan, merged, start, wall, qec.Parallelism, len(low.tasks)+1)
	if execErr != nil {
		// Partial result: the trace carries per-node error annotations and
		// docs holds whatever flowed out before the failure. Callers decide
		// whether to degrade (serve what ran, flagged) or fail outright.
		return res, fmt.Errorf("luna: execute: %w", execErr)
	}

	if serr := e.shapeAnswer(ctx, res, low, docs); serr != nil {
		return nil, serr
	}
	return res, nil
}

// shapeAnswer derives the typed answer from the terminal operator over
// the executed documents — shared by the batch (Run) and streaming
// (RunStream) paths, which is what guarantees their final results are
// identical for the same plan.
func (e *Executor) shapeAnswer(ctx context.Context, res *Result, low *lowered, docs []*docmodel.Document) error {
	groupKeyField := low.keyField
	switch low.terminal.Op {
	case OpCount:
		res.Answer = NumberAnswer(float64(len(docs)))
	case OpFraction:
		ans, ferr := e.fraction(ctx, docs, low.terminal)
		if ferr != nil {
			return ferr
		}
		res.Answer = ans
	case OpGroupByAggregate:
		key := low.terminal.Key
		if key == "" {
			key = "group"
		}
		res.Answer = tableFromGroups(docs, key)
		if low.terminal.Key == "" && len(docs) == 1 {
			// Global aggregate: a single number.
			if v, ok := docs[0].Properties.Float("value"); ok {
				res.Answer = NumberAnswer(v)
			}
		}
	case OpTopK:
		keys := make([]string, 0, len(docs))
		for _, d := range docs {
			key := d.Property(groupKeyField)
			if key == "" {
				key = d.ID
			}
			keys = append(keys, key)
		}
		res.Answer = ListAnswer(keys...)
	case OpProject:
		res.Answer = projectAnswer(docs, low.terminal.ProjectFields)
	case OpLLMGenerate:
		text := ""
		if len(docs) > 0 {
			text = docs[0].Text
		}
		res.Answer = TextAnswer(text)
	case OpLLMCluster:
		res.Answer = tableFromClusterLabels(docs)
	default:
		ids := make([]string, 0, len(docs))
		for _, d := range docs {
			ids = append(ids, d.ID)
		}
		res.Answer = ListAnswer(ids...)
	}
	return nil
}

// StreamHooks observe a streaming execution. Both hooks are optional;
// they are invoked from executor goroutines while the query runs, so
// implementations must be safe for concurrent use with the caller.
type StreamHooks struct {
	// OnPartial receives arrival-order batches of documents as they clear
	// the plan's output node — previews, not the canonical result (the
	// Result returned at the end carries the deterministic documents and
	// the shaped answer).
	OnPartial func(docs []*docmodel.Document)
	// OnTrace receives each pipeline's trace skeleton the moment it
	// starts executing (output pipeline, scheduled branches). Poll
	// NodeTrace.Snapshot for live per-operator progress.
	OnTrace func(*docset.Trace)
}

// RunStream executes the plan like Run while streaming results out as
// they are produced: the output pipeline runs behind a bounded-channel
// streaming task edge (docset.Task.StartStream), partial batches flow to
// hooks.OnPartial before the tail of the plan finishes, and every
// pipeline's live trace is published to hooks.OnTrace. The returned
// Result is identical to Run's for the same plan — same documents, same
// shaped answer — because the canonical output is still collected and
// deterministically ordered after the stream drains. Order-sensitive
// handoffs (join build sides, shared diamond prefixes) keep their
// materialized form; only the output edge streams.
func (e *Executor) RunStream(ctx context.Context, plan *LogicalPlan, hooks StreamHooks) (*Result, error) {
	qec := e.EC.QueryScope()
	if hooks.OnTrace != nil {
		qec.TraceSink = hooks.OnTrace
	}
	low, err := e.lower(qec, plan)
	if err != nil {
		return nil, err
	}
	res := &Result{Rewritten: plan}
	res.Compiled = low.ds.PlanString()

	llmBefore, hasLLMStats := llm.StatsOf(qec.LLM)
	start := wallclock()
	tctx, tcancel := context.WithCancel(ctx)
	defer tcancel()
	for _, t := range low.tasks {
		t.Start(tctx)
		if e.Serial {
			t.Join()
		}
	}
	// The output pipeline becomes a streaming task: its documents cross a
	// bounded channel to the consumer below, which forwards batches to
	// the caller as they arrive and collects the canonical result.
	outTask := docset.NewTask("output["+plan.Output+"]", low.ds)
	outTask.StartStream(tctx)
	var sink docset.StreamSink
	if hooks.OnPartial != nil {
		sink = docset.StreamSink(hooks.OnPartial)
	}
	docs, edgeTrace, execErr := outTask.StreamDocSet().ExecuteStream(tctx, sink)
	tcancel()
	outTask.Join()
	for _, t := range low.tasks {
		t.Join()
	}
	wall := time.Since(start)

	merged := &docset.Trace{Wall: wall}
	for _, t := range low.tasks {
		if tt := t.Trace(); tt != nil {
			merged.Nodes = append(merged.Nodes, tt.Nodes...)
		}
	}
	if tt := outTask.Trace(); tt != nil {
		merged.Nodes = append(merged.Nodes, tt.Nodes...)
	}
	if edgeTrace != nil {
		// The consumer pipeline is a single untagged relay source; its
		// node carries the edge's batch counters and first-batch latency.
		merged.Nodes = append(merged.Nodes, edgeTrace.Nodes...)
	}
	if hasLLMStats {
		if after, ok := llm.StatsOf(qec.LLM); ok {
			delta := after.Sub(llmBefore)
			merged.LLM = &delta
		}
	}
	res.Trace = merged
	res.Docs = docs
	// Branches: scheduled subtrees, the output producer, and the edge
	// consumer relay.
	res.Exec = buildExecDetail(plan, merged, start, wall, qec.Parallelism, len(low.tasks)+2)
	if execErr != nil {
		return res, fmt.Errorf("luna: execute: %w", execErr)
	}
	if serr := e.shapeAnswer(ctx, res, low, docs); serr != nil {
		return nil, serr
	}
	return res, nil
}

// root builds a source DocSet under the given execution context.
func (e *Executor) root(ec *docset.Context, op LogicalOp) (*docset.DocSet, error) {
	switch op.Op {
	case OpQueryDatabase:
		return docset.QueryDatabase(ec, e.Store, index.Query{
			Keyword: op.Keyword,
			Filter:  compileFilters(op.Filters),
		}), nil
	case OpQueryVectorDatabase:
		k := op.K
		if k <= 0 {
			k = 20
		}
		return docset.QueryVectorDatabase(ec, e.Store, op.Query, nil, k), nil
	default:
		return nil, fmt.Errorf("%w: plan must start with a query operator, got %q", ErrInvalidPlan, op.Op)
	}
}

// fraction computes the terminal fraction op: the share of the incoming
// documents satisfying the predicate.
func (e *Executor) fraction(ctx context.Context, docs []*docmodel.Document, op LogicalOp) (Answer, error) {
	if len(docs) == 0 {
		return NumberAnswer(0), nil
	}
	num := docset.FromDocuments(e.EC, docs)
	if op.Question != "" {
		num = num.LLMFilter(op.Question)
	} else if len(op.Filters) > 0 {
		num = num.FilterProps(compileFilters(op.Filters))
	}
	matched, err := num.Count(ctx)
	if err != nil {
		return Answer{}, fmt.Errorf("luna: fraction: %w", err)
	}
	return NumberAnswer(float64(matched) / float64(len(docs))), nil
}

// compileFilters lowers FilterSpecs to an index predicate.
func compileFilters(filters []FilterSpec) index.Predicate {
	if len(filters) == 0 {
		return index.MatchAll()
	}
	preds := make([]index.Predicate, 0, len(filters))
	for _, f := range filters {
		switch f.Kind {
		case "term":
			preds = append(preds, index.Term(f.Field, f.Value))
		case "contains":
			preds = append(preds, index.Contains(f.Field, fmt.Sprintf("%v", f.Value)))
		case "gte":
			v := toFloat(f.Value)
			preds = append(preds, index.Range(f.Field, &v, nil))
		case "lte":
			v := toFloat(f.Value)
			preds = append(preds, index.Range(f.Field, nil, &v))
		}
	}
	return index.And(preds...)
}

func toFloat(v any) float64 {
	switch t := v.(type) {
	case float64:
		return t
	case int:
		return float64(t)
	case string:
		var f float64
		fmt.Sscanf(t, "%f", &f)
		return f
	default:
		return 0
	}
}

func tableFromGroups(docs []*docmodel.Document, keyField string) Answer {
	table := make(map[string]float64, len(docs))
	for _, d := range docs {
		key := d.Property(keyField)
		if key == "" {
			key = d.ID
		}
		if v, ok := d.Properties.Float("value"); ok {
			table[key] = v
		}
	}
	return TableAnswer(table)
}

func tableFromClusterLabels(docs []*docmodel.Document) Answer {
	table := map[string]float64{}
	for _, d := range docs {
		label := d.Property("cluster_label")
		if label == "" {
			label = "cluster " + d.Property("cluster_id")
		}
		table[label]++
	}
	return TableAnswer(table)
}

func projectAnswer(docs []*docmodel.Document, fields []string) Answer {
	seen := map[string]bool{}
	var values []string
	for _, d := range docs {
		parts := make([]string, 0, len(fields))
		for _, f := range fields {
			if v := d.Property(f); v != "" {
				parts = append(parts, v)
			}
		}
		v := strings.Join(parts, " / ")
		if v == "" || seen[v] {
			continue
		}
		seen[v] = true
		values = append(values, v)
	}
	a := ListAnswer(values...)
	a.Text = strings.Join(values, "; ")
	return a
}
