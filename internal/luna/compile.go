package luna

import (
	"context"
	"fmt"
	"strings"

	"aryn/internal/docmodel"
	"aryn/internal/docset"
	"aryn/internal/index"
	"aryn/internal/llm"
)

// Executor lowers validated logical plans onto Sycamore DocSet pipelines
// and derives typed answers from the terminal operator (§6.1 Execution).
type Executor struct {
	// EC is the Sycamore execution context (LLM, embedder, parallelism).
	EC *docset.Context
	// Store is the index the plan roots read from.
	Store *index.Store
}

// Result is one executed query: the plans, the typed answer, and the full
// lineage trace for the drill-down UI (§6.2).
type Result struct {
	Question  string
	Plan      *LogicalPlan // as emitted by the planner
	Rewritten *LogicalPlan // after rule-based optimization
	Answer    Answer
	Trace     *docset.Trace
	// Compiled is the physical Sycamore plan rendering.
	Compiled string
	// Docs are the terminal documents (for drill-down).
	Docs []*docmodel.Document
	// LLM reports call-middleware activity (cache hits, singleflight
	// collapses, batches) across planning AND execution of this query;
	// nil when the client carries no middleware stack.
	LLM *llm.StackStats
}

// Run executes the plan and shapes the answer.
func (e *Executor) Run(ctx context.Context, plan *LogicalPlan) (*Result, error) {
	if len(plan.Ops) == 0 {
		return nil, fmt.Errorf("%w: empty plan", ErrInvalidPlan)
	}
	res := &Result{Rewritten: plan}

	ds, err := e.root(plan.Ops[0])
	if err != nil {
		return nil, err
	}

	var terminal LogicalOp
	var groupKeyField string
	var projectFields []string
	body := plan.Ops[1:]
	for i, op := range body {
		switch op.Op {
		case OpBasicFilter:
			ds = ds.FilterProps(compileFilters(op.Filters))
		case OpLLMFilter:
			ds = ds.LLMFilter(op.Question)
		case OpLLMExtract:
			ds = ds.LLMExtract(op.Fields)
		case OpGroupByAggregate:
			ds = ds.GroupByAggregate(op.Key, docset.AggKind(op.Agg), op.ValueField)
			groupKeyField = op.Key
			if groupKeyField == "" {
				groupKeyField = "group"
			}
			terminal = op
		case OpLLMCluster:
			ds = ds.LLMCluster(op.K, nil, 17)
			terminal = op
		case OpTopK:
			ds = ds.TopK(op.Field, op.K)
			terminal = op
		case OpLimit:
			ds = ds.Limit(op.K)
		case opDistinct:
			ds = ds.Distinct(op.Field)
		case OpProject:
			projectFields = op.ProjectFields
			terminal = op
		case OpLLMGenerate:
			ds = ds.Summarize(op.Instruction)
			terminal = op
		case OpCount, OpFraction:
			if i != len(body)-1 {
				return nil, fmt.Errorf("%w: %s must be terminal", ErrInvalidPlan, op.Op)
			}
			terminal = op
		default:
			return nil, fmt.Errorf("%w: unknown operator %q", ErrInvalidPlan, op.Op)
		}
	}

	res.Compiled = ds.PlanString()
	docs, trace, err := ds.Execute(ctx)
	if err != nil {
		return nil, fmt.Errorf("luna: execute: %w", err)
	}
	res.Trace = trace
	res.Docs = docs

	switch terminal.Op {
	case OpCount:
		res.Answer = NumberAnswer(float64(len(docs)))
	case OpFraction:
		ans, ferr := e.fraction(ctx, docs, terminal)
		if ferr != nil {
			return nil, ferr
		}
		res.Answer = ans
	case OpGroupByAggregate:
		res.Answer = tableFromGroups(docs, groupKeyField)
		if terminal.Key == "" && len(docs) == 1 {
			// Global aggregate: a single number.
			if v, ok := docs[0].Properties.Float("value"); ok {
				res.Answer = NumberAnswer(v)
			}
		}
	case OpTopK:
		keys := make([]string, 0, len(docs))
		for _, d := range docs {
			key := d.Property(groupKeyField)
			if key == "" {
				key = d.ID
			}
			keys = append(keys, key)
		}
		res.Answer = ListAnswer(keys...)
	case OpProject:
		res.Answer = projectAnswer(docs, projectFields)
	case OpLLMGenerate:
		text := ""
		if len(docs) > 0 {
			text = docs[0].Text
		}
		res.Answer = TextAnswer(text)
	case OpLLMCluster:
		res.Answer = tableFromClusterLabels(docs)
	default:
		ids := make([]string, 0, len(docs))
		for _, d := range docs {
			ids = append(ids, d.ID)
		}
		res.Answer = ListAnswer(ids...)
	}
	return res, nil
}

// root builds the plan's source DocSet.
func (e *Executor) root(op LogicalOp) (*docset.DocSet, error) {
	switch op.Op {
	case OpQueryDatabase:
		return docset.QueryDatabase(e.EC, e.Store, index.Query{
			Keyword: op.Keyword,
			Filter:  compileFilters(op.Filters),
		}), nil
	case OpQueryVectorDatabase:
		k := op.K
		if k <= 0 {
			k = 20
		}
		return docset.QueryVectorDatabase(e.EC, e.Store, op.Query, nil, k), nil
	default:
		return nil, fmt.Errorf("%w: plan must start with a query operator, got %q", ErrInvalidPlan, op.Op)
	}
}

// fraction computes the terminal fraction op: the share of the incoming
// documents satisfying the predicate.
func (e *Executor) fraction(ctx context.Context, docs []*docmodel.Document, op LogicalOp) (Answer, error) {
	if len(docs) == 0 {
		return NumberAnswer(0), nil
	}
	num := docset.FromDocuments(e.EC, docs)
	if op.Question != "" {
		num = num.LLMFilter(op.Question)
	} else if len(op.Filters) > 0 {
		num = num.FilterProps(compileFilters(op.Filters))
	}
	matched, err := num.Count(ctx)
	if err != nil {
		return Answer{}, fmt.Errorf("luna: fraction: %w", err)
	}
	return NumberAnswer(float64(matched) / float64(len(docs))), nil
}

// compileFilters lowers FilterSpecs to an index predicate.
func compileFilters(filters []FilterSpec) index.Predicate {
	if len(filters) == 0 {
		return index.MatchAll()
	}
	preds := make([]index.Predicate, 0, len(filters))
	for _, f := range filters {
		switch f.Kind {
		case "term":
			preds = append(preds, index.Term(f.Field, f.Value))
		case "contains":
			preds = append(preds, index.Contains(f.Field, fmt.Sprintf("%v", f.Value)))
		case "gte":
			v := toFloat(f.Value)
			preds = append(preds, index.Range(f.Field, &v, nil))
		case "lte":
			v := toFloat(f.Value)
			preds = append(preds, index.Range(f.Field, nil, &v))
		}
	}
	return index.And(preds...)
}

func toFloat(v any) float64 {
	switch t := v.(type) {
	case float64:
		return t
	case int:
		return float64(t)
	case string:
		var f float64
		fmt.Sscanf(t, "%f", &f)
		return f
	default:
		return 0
	}
}

func tableFromGroups(docs []*docmodel.Document, keyField string) Answer {
	table := make(map[string]float64, len(docs))
	for _, d := range docs {
		key := d.Property(keyField)
		if key == "" {
			key = d.ID
		}
		if v, ok := d.Properties.Float("value"); ok {
			table[key] = v
		}
	}
	return TableAnswer(table)
}

func tableFromClusterLabels(docs []*docmodel.Document) Answer {
	table := map[string]float64{}
	for _, d := range docs {
		label := d.Property("cluster_label")
		if label == "" {
			label = "cluster " + d.Property("cluster_id")
		}
		table[label]++
	}
	return TableAnswer(table)
}

func projectAnswer(docs []*docmodel.Document, fields []string) Answer {
	seen := map[string]bool{}
	var values []string
	for _, d := range docs {
		parts := make([]string, 0, len(fields))
		for _, f := range fields {
			if v := d.Property(f); v != "" {
				parts = append(parts, v)
			}
		}
		v := strings.Join(parts, " / ")
		if v == "" || seen[v] {
			continue
		}
		seen[v] = true
		values = append(values, v)
	}
	a := ListAnswer(values...)
	a.Text = strings.Join(values, "; ")
	return a
}
