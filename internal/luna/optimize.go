package luna

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"aryn/internal/cost"
	"aryn/internal/docset"
	"aryn/internal/llm"
)

// This file implements the cost-based optimize phase that runs after the
// rule-based Rewrite: commuting operators are reordered so cheap
// predicates run before LLM operators, llmFilter chains are ordered most
// selective first using feedback-store evidence, and llmFilter nodes are
// lowered onto proxy cascades that screen documents with embedding
// similarity before spending an LLM call. All three transformations are
// result-preserving: filters commute, and the cascade escalates to the
// exact llmFilter predicate for every document it cannot decide cheaply.

// CascadeOptions configures proxy-cascade insertion during optimization.
type CascadeOptions struct {
	// Enabled turns llmFilter nodes into llmFilterCascade nodes.
	Enabled bool
	// Low and High are the proxy threshold band written into the rewritten
	// nodes; values <= 0 select the docset defaults.
	Low, High float64
}

// DefaultCascade returns the production cascade configuration.
func DefaultCascade() CascadeOptions {
	return CascadeOptions{Enabled: true, Low: docset.DefaultCascadeLow, High: docset.DefaultCascadeHigh}
}

// Optimizer is the cost-based optimize phase. A nil Model (or a model
// with an empty store) still optimizes — hoisting and cascades need no
// evidence — it just cannot reorder llmFilter chains, which requires
// observed selectivities to beat the stable default order.
type Optimizer struct {
	Model   *cost.Model
	Cascade CascadeOptions
}

// Optimize applies the cost-based phase over the DAG and returns a new
// plan; the input is not modified. Transformations, in order:
//
//  1. hoist basicFilter nodes above adjacent LLM operators (exact:
//     structured predicates commute with per-document LLM transforms
//     unless the predicate reads a field the transform materializes);
//  2. re-run the pushFilters rule, since a hoisted filter may now sit on
//     its queryDatabase root and fold into the index scan;
//  3. order consecutive llmFilter chains most-selective-first by
//     feedback-store evidence (stable: unobserved filters keep their
//     planner order);
//  4. lower llmFilter nodes onto proxy cascades (when Cascade.Enabled).
func (o *Optimizer) Optimize(plan *LogicalPlan) *LogicalPlan {
	plan.normalize()
	p := plan.Clone()
	hoistBasicFilters(p)
	pushFilters(p)
	reorderLLMFilters(p, o.Model)
	if o.Cascade.Enabled {
		insertCascades(p, o.Cascade)
	}
	p.syncLinearView()
	return p
}

// hoistBasicFilters moves a basicFilter above the LLM operator it
// exclusively consumes, repeating to fixpoint so a filter bubbles past a
// whole run of LLM operators. Hoisting past llmExtract is skipped when
// the filter reads any field the extract materializes (the field would
// not exist yet upstream).
func hoistBasicFilters(p *LogicalPlan) {
	for {
		hoisted := false
		for i := range p.Nodes {
			f := &p.Nodes[i]
			if f.Op != OpBasicFilter || len(f.Inputs) != 1 {
				continue
			}
			up := p.node(f.Inputs[0])
			if up == nil || len(up.Inputs) != 1 {
				continue
			}
			if cs := p.consumers(up.ID); len(cs) != 1 || cs[0] != f.ID {
				continue
			}
			switch up.Op {
			case OpLLMFilter, OpLLMFilterCascade:
				// Pure per-document predicates: always commute.
			case OpLLMExtract:
				if filterReadsExtracted(f.Filters, up.Fields) {
					continue
				}
			default:
				continue
			}
			swapAboveSingle(p, f, up)
			hoisted = true
			break
		}
		if !hoisted {
			return
		}
	}
}

// filterReadsExtracted reports whether any filter predicate reads a
// field the llmExtract materializes.
func filterReadsExtracted(filters []FilterSpec, fields []llm.FieldSpec) bool {
	produced := map[string]bool{}
	for _, f := range fields {
		produced[f.Name] = true
	}
	for _, f := range filters {
		if produced[f.Field] {
			return true
		}
	}
	return false
}

// swapAboveSingle swaps adjacent single-input nodes f and up (f currently
// consumes up; afterwards up consumes f). up must have no consumer other
// than f.
func swapAboveSingle(p *LogicalPlan, f, up *PlanNode) {
	x := up.Inputs[0]
	for i := range p.Nodes {
		n := &p.Nodes[i]
		if n.ID == f.ID || n.ID == up.ID {
			continue
		}
		for j, edge := range n.Inputs {
			if edge == f.ID {
				n.Inputs[j] = up.ID
			}
		}
	}
	if p.Output == f.ID {
		p.Output = up.ID
	}
	f.Inputs[0] = x
	up.Inputs[0] = f.ID
}

// reorderLLMFilters orders each maximal chain of consecutive llmFilter
// nodes most-selective-first using feedback-store evidence. The sort is
// stable and unobserved filters carry the default selectivity, so a cold
// store leaves the planner's order untouched; as observations accumulate
// the cheaper-to-satisfy predicate drifts to the front, which shrinks
// the document flow into the later (equally expensive) filters.
func reorderLLMFilters(p *LogicalPlan, m *cost.Model) {
	for i := range p.Nodes {
		head := &p.Nodes[i]
		if head.Op != OpLLMFilter || len(head.Inputs) != 1 {
			continue
		}
		if up := p.node(head.Inputs[0]); up != nil && up.Op == OpLLMFilter {
			if cs := p.consumers(up.ID); len(cs) == 1 {
				continue // not a chain head: an llmFilter feeds it exclusively
			}
		}
		chain := []*PlanNode{head}
		for {
			cur := chain[len(chain)-1]
			cs := p.consumers(cur.ID)
			if len(cs) != 1 {
				break
			}
			next := p.node(cs[0])
			if next == nil || next.Op != OpLLMFilter || len(next.Inputs) != 1 {
				break
			}
			chain = append(chain, next)
		}
		if len(chain) < 2 {
			continue
		}
		ordered := append([]*PlanNode(nil), chain...)
		sel := func(n *PlanNode) float64 {
			s, _ := m.Selectivity(OpLLMFilter, opSignature(n.LogicalOp))
			return s
		}
		sort.SliceStable(ordered, func(a, b int) bool { return sel(ordered[a]) < sel(ordered[b]) })
		changed := false
		for j := range chain {
			if chain[j].ID != ordered[j].ID {
				changed = true
				break
			}
		}
		if !changed {
			continue
		}
		// Relink: the chain's upstream feeds the new head, members link in
		// the new order, and external consumers of the old tail (plus the
		// plan output) move to the new tail. Interior members have no
		// external consumers by construction.
		upstream := chain[0].Inputs[0]
		oldTail, newTail := chain[len(chain)-1], ordered[len(ordered)-1]
		chainIDs := map[string]bool{}
		for _, n := range chain {
			chainIDs[n.ID] = true
		}
		for k := range p.Nodes {
			n := &p.Nodes[k]
			if chainIDs[n.ID] {
				continue
			}
			for j, edge := range n.Inputs {
				if edge == oldTail.ID {
					n.Inputs[j] = newTail.ID
				}
			}
		}
		if p.Output == oldTail.ID {
			p.Output = newTail.ID
		}
		ordered[0].Inputs[0] = upstream
		for j := 1; j < len(ordered); j++ {
			ordered[j].Inputs[0] = ordered[j-1].ID
		}
	}
}

// insertCascades lowers every llmFilter node onto a proxy cascade with
// the configured threshold band (explicit values are written into the
// plan so the optimized JSON is self-describing).
func insertCascades(p *LogicalPlan, opts CascadeOptions) {
	low, high := opts.Low, opts.High
	if low <= 0 {
		low = docset.DefaultCascadeLow
	}
	if high <= 0 {
		high = docset.DefaultCascadeHigh
	}
	for i := range p.Nodes {
		n := &p.Nodes[i]
		if n.Op != OpLLMFilter {
			continue
		}
		n.Op = OpLLMFilterCascade
		n.Low, n.High = low, high
	}
}

// opSignature identifies an operator instance across queries for the
// feedback store: the operator name plus its semantically load-bearing
// parameters. llmFilter and llmFilterCascade share a signature — they
// evaluate the same predicate, so selectivity evidence transfers between
// the plain and cascaded forms.
func opSignature(op LogicalOp) string {
	switch op.Op {
	case OpLLMFilter, OpLLMFilterCascade:
		return "llmFilter|" + op.Question
	case OpBasicFilter:
		return "basicFilter|" + filterSig(op.Filters)
	case OpQueryDatabase:
		return "queryDatabase|" + op.Keyword + "|" + filterSig(op.Filters)
	case OpQueryVectorDatabase:
		return fmt.Sprintf("queryVectorDatabase|%s|%d", op.Query, op.K)
	case OpLLMExtract:
		names := make([]string, len(op.Fields))
		for i, f := range op.Fields {
			names[i] = f.Name
		}
		return "llmExtract|" + strings.Join(names, ",")
	case opDistinct:
		return "distinct|" + op.Field
	case OpGroupByAggregate:
		return fmt.Sprintf("groupByAggregate|%s|%s|%s", op.Key, op.Agg, op.ValueField)
	case OpFraction:
		return "fraction|" + op.Question + "|" + filterSig(op.Filters)
	default:
		return op.Op
	}
}

func filterSig(filters []FilterSpec) string {
	parts := make([]string, len(filters))
	for i, f := range filters {
		parts[i] = fmt.Sprintf("%s %s %v", f.Field, f.Kind, f.Value)
	}
	return strings.Join(parts, "&")
}

// defaultGroupCount is the assumed group cardinality for aggregation
// estimates before any evidence.
const defaultGroupCount = 8

// EstimatePlan walks the DAG in topological order propagating estimated
// document cardinalities and accumulating per-node LLM calls and unit
// costs — defaults refined by whatever evidence the model's feedback
// store holds. baseDocs is the corpus size the source scans. Returns nil
// for nil/cyclic plans.
func EstimatePlan(plan *LogicalPlan, m *cost.Model, baseDocs float64) *cost.PlanEstimate {
	if plan == nil {
		return nil
	}
	plan.normalize()
	order, err := plan.topoOrder()
	if err != nil {
		return nil
	}
	est := &cost.PlanEstimate{}
	outDocs := map[string]float64{}
	for _, idx := range order {
		n := plan.Nodes[idx]
		var in float64
		for _, e := range n.Inputs {
			in += outDocs[e]
		}
		sig := opSignature(n.LogicalOp)
		ne := cost.NodeEstimate{ID: n.ID, Op: n.Op, DocsIn: in}
		var out, calls, units float64
		switch n.Op {
		case OpQueryDatabase:
			out = baseDocs
			if n.Keyword != "" {
				out *= 0.3
			}
			out *= math.Pow(0.5, float64(len(n.Filters)))
			if a, ok := lookupSig(m, sig); ok && a.Count > 0 {
				out = float64(a.DocsOut) / float64(a.Count)
				ne.Observed = true
			}
			units = baseDocs * cost.UnitsPerPredicate
		case OpQueryVectorDatabase:
			k := float64(n.K)
			if k <= 0 {
				k = 20
			}
			out = math.Min(k, baseDocs)
			units = baseDocs * cost.UnitsPerPredicate
		case OpBasicFilter:
			sel, observed := m.Selectivity(n.Op, sig)
			out = in * sel
			units = in * math.Max(float64(len(n.Filters)), 1) * cost.UnitsPerPredicate
			ne.Observed = observed
		case OpLLMFilter:
			sel, observed := m.Selectivity(n.Op, sig)
			out = in * sel
			calls = in
			units = calls * cost.UnitsPerLLMCall
			ne.Observed = observed
		case OpLLMFilterCascade:
			sel, observed := m.Selectivity(n.Op, sig)
			out = in * sel
			calls = in * cost.DefaultEscalationRate
			units = in*cost.UnitsPerProxy + calls*cost.UnitsPerLLMCall
			ne.Observed = observed
		case OpLLMExtract:
			out = in
			calls = in
			units = calls * cost.UnitsPerLLMCall
		case OpLLMCluster:
			out = in
			calls = in
			units = calls * cost.UnitsPerLLMCall
		case OpGroupByAggregate:
			out = math.Min(in, defaultGroupCount)
			units = in * cost.UnitsPerPredicate
		case OpTopK, OpLimit:
			out = math.Min(float64(n.K), in)
			units = in * cost.UnitsPerPredicate
		case opDistinct:
			sel, observed := m.Selectivity(n.Op, sig)
			out = in * sel
			units = in * cost.UnitsPerPredicate
			ne.Observed = observed
		case OpLLMGenerate:
			out = 1
			calls = 1
			units = cost.UnitsPerLLMCall
		case OpCount:
			out = 1
		case OpFraction:
			out = 1
			if n.Question != "" {
				calls = in
				units = in * cost.UnitsPerLLMCall
			}
		case OpJoin:
			// Probe-side documents survive (enriched); the build side only
			// constrains them.
			if len(n.Inputs) > 0 {
				out = outDocs[n.Inputs[0]]
			}
			units = in * cost.UnitsPerPredicate
		default:
			out = in
		}
		ne.DocsOut = roundEst(out)
		ne.DocsIn = roundEst(in)
		ne.LLMCalls = roundEst(calls)
		ne.Units = roundEst(units)
		est.Add(ne)
		outDocs[n.ID] = out
	}
	est.LLMCalls = roundEst(est.LLMCalls)
	est.Units = roundEst(est.Units)
	return est
}

// lookupSig fetches observed evidence without the Model's default
// fallback (for estimates that need raw aggregates, e.g. source output
// cardinality).
func lookupSig(m *cost.Model, sig string) (cost.Aggregate, bool) {
	if m == nil || m.Store == nil {
		return cost.Aggregate{}, false
	}
	return m.Store.Lookup(sig)
}

// roundEst keeps estimate JSON readable (two decimals is plenty for
// figures that start from coarse defaults).
func roundEst(v float64) float64 {
	return math.Round(v*100) / 100
}

// ObserveExec records every executed node's measured behaviour into the
// feedback store — the write half of the optimization loop, run after
// each query completes. The plan must be the one Exec's node IDs refer
// to (Result.ExecutedPlan).
func ObserveExec(plan *LogicalPlan, exec *ExecDetail, store *cost.Store) {
	if plan == nil || exec == nil || store == nil {
		return
	}
	plan.normalize()
	for _, n := range plan.Nodes {
		ne := exec.Node(n.ID)
		if ne == nil {
			continue
		}
		r := ne.Runtime
		store.Observe(cost.Observation{
			Op:               n.Op,
			Signature:        opSignature(n.LogicalOp),
			DocsIn:           r.DocsIn,
			DocsOut:          r.DocsOut,
			LLMCalls:         r.LLMCalls,
			PromptTokens:     r.PromptTokens,
			CompletionTokens: r.CompletionTokens,
			BusyMS:           r.BusyMS,
		})
	}
}
