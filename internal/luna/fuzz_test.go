package luna

// Native fuzz targets for the plan surface the network exposes: plan-JSON
// decoding (ParsePlan accepts raw client bytes), DAG validation, and the
// cost-based rewrite phase (which must preserve validity and never add
// LLM work for ANY valid plan, not just the ones the equivalence suite
// enumerates). Seed corpora live in testdata/fuzz/<Target>/; CI runs a
// short -fuzztime smoke over each target.

import (
	"testing"

	"aryn/internal/cost"
)

// fuzzSeeds is the shared seed mix: well-formed linear and DAG plans, the
// optimizer's special shapes (chains, hoists, cascades), and malformed
// inputs that must fail cleanly.
var fuzzSeeds = []string{
	`{"ops":[{"op":"queryDatabase"},{"op":"count"}]}`,
	`{"ops":[{"op":"queryDatabase","filters":[{"field":"us_state","kind":"term","value":"KY"}]},{"op":"llmFilter","question":"Does the report mention a fire?"},{"op":"count"}]}`,
	`{"ops":[{"op":"queryDatabase"},{"op":"llmFilter","question":"a?"},{"op":"llmFilter","question":"b?"},{"op":"basicFilter","filters":[{"field":"engines","kind":"term","value":1}]},{"op":"count"}]}`,
	`{"ops":[{"op":"queryDatabase"},{"op":"llmExtract","fields":[{"name":"damaged_part","type":"string"}]},{"op":"groupByAggregate","key":"damaged_part","agg":"count"}]}`,
	`{"nodes":[{"id":"n1","op":"queryDatabase"},{"id":"n2","inputs":["n1"],"op":"llmFilterCascade","question":"q?","low":0.05,"high":0.9},{"id":"n3","inputs":["n2"],"op":"count"}],"output":"n3"}`,
	`{"nodes":[{"id":"n1","op":"queryDatabase","filters":[{"field":"us_state","kind":"term","value":"KY"}]},{"id":"n2","op":"queryDatabase"},{"id":"n3","inputs":["n1","n2"],"op":"join","left_key":"accidentNumber","right_key":"accidentNumber","join_kind":"inner","prefix":"right"},{"id":"n4","inputs":["n3"],"op":"count"}],"output":"n4"}`,
	`{"nodes":[{"id":"a","op":"queryDatabase"},{"id":"b","inputs":["a"],"op":"llmFilter","question":"x?"},{"id":"c","inputs":["a"],"op":"llmFilter","question":"y?"},{"id":"d","inputs":["b","c"],"op":"join","left_key":"accidentNumber","right_key":"accidentNumber"},{"id":"e","inputs":["d"],"op":"count"}],"output":"e"}`,
	`{"ops":[{"op":"queryVectorDatabase","query":"bird strike","k":5},{"op":"limit","k":1}]}`,
	`{"nodes":[{"id":"n1","op":"queryDatabase"},{"id":"n2","inputs":["n1","n1"],"op":"join"}],"output":"n2"}`,
	`{"nodes":[{"id":"n1","inputs":["n1"],"op":"count"}],"output":"n1"}`,
	`{"ops":[{"op":"teleport"}]}`,
	`{"nodes":[{"id":"n1","op":"llmFilterCascade","question":"q?","low":2,"high":1}],"output":"n1"}`,
	`not json at all`,
	`{"ops":[]}`,
	`{}`,
}

// FuzzPlanDecode asserts ParsePlan never panics, and that anything it
// accepts re-encodes to a stable fixed point: JSON() must decode again
// and re-encode byte-identically (the wire-stability invariant).
func FuzzPlanDecode(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		plan, err := ParsePlan(data)
		if err != nil {
			return
		}
		_ = plan.String()
		re := plan.JSON()
		back, err := ParsePlan(re)
		if err != nil {
			t.Fatalf("re-decode of accepted plan failed: %v\nencoded: %s", err, re)
		}
		if again := back.JSON(); again != re {
			t.Fatalf("JSON() is not a fixed point:\nfirst:  %s\nsecond: %s", re, again)
		}
	})
}

// FuzzValidatePlan asserts validation never panics and is deterministic:
// the same plan validates the same way twice.
func FuzzValidatePlan(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	schema := testSchema()
	f.Fuzz(func(t *testing.T, data string) {
		plan, err := ParsePlan(data)
		if err != nil {
			return
		}
		first := Validate(plan, schema)
		second := Validate(plan, schema)
		if (first == nil) != (second == nil) {
			t.Fatalf("validation not deterministic: %v then %v", first, second)
		}
	})
}

// FuzzCostRewrite asserts the optimize phase is total and safe on every
// valid plan: no panic, the output still validates, and the number of
// LLM-predicate evaluations per document cannot grow (cascade conversion
// is 1:1; hoists and reorders only move nodes).
func FuzzCostRewrite(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	schema := testSchema()
	model := cost.NewModel(cost.NewStore())
	f.Fuzz(func(t *testing.T, data string) {
		plan, err := ParsePlan(data)
		if err != nil || Validate(plan, schema) != nil {
			return
		}
		o := &Optimizer{Model: model, Cascade: DefaultCascade()}
		opt := o.Optimize(plan)
		if err := Validate(opt, schema); err != nil {
			t.Fatalf("optimized plan fails validation: %v\ninput: %s\noutput: %s", err, plan.JSON(), opt.JSON())
		}
		if got, want := countLLMNodes(opt), countLLMNodes(plan); got > want {
			t.Fatalf("optimizer added LLM nodes: %d > %d\ninput: %s\noutput: %s", got, want, plan.JSON(), opt.JSON())
		}
		// The phase must be deterministic: same input, same output bytes.
		if second := o.Optimize(plan); second.JSON() != opt.JSON() {
			t.Fatalf("optimize not deterministic:\nfirst:  %s\nsecond: %s", opt.JSON(), second.JSON())
		}
	})
}

// countLLMNodes counts nodes that dispatch per-document LLM calls.
func countLLMNodes(p *LogicalPlan) int {
	q := p.Clone()
	n := 0
	for _, node := range q.Nodes {
		switch node.Op {
		case OpLLMFilter, OpLLMFilterCascade, OpLLMExtract, OpLLMCluster, OpFraction:
			n++
		}
	}
	return n
}
