package luna

import (
	"encoding/json"
	"math"
	"time"

	"aryn/internal/docset"
)

// This file implements the EXPLAIN ANALYZE view of an executed query:
// per-plan-node runtime metrics aggregated from the execution traces, and
// the annotated-plan JSON the Plan API returns as "executed". ZenDB and
// UQE both observe that operator-level runtime feedback is what makes an
// LLM query engine tunable; this is that feedback loop for Luna.

// NodeRuntime is the measured runtime of one logical plan node. A logical
// operator may lower to several physical stages (llmCluster, for
// instance); their metrics are aggregated here.
type NodeRuntime struct {
	// StartMS/EndMS bound the node's busy window as offsets (in
	// milliseconds) from the start of execution. Overlapping windows on
	// nodes of different branches are the observable proof that the
	// branches ran concurrently.
	StartMS float64 `json:"start_ms"`
	EndMS   float64 `json:"end_ms"`
	// WallMS is the width of the busy window; BusyMS is worker-seconds of
	// actual work inside it (BusyMS > WallMS means intra-node
	// parallelism).
	WallMS float64 `json:"wall_ms"`
	BusyMS float64 `json:"busy_ms"`
	// FirstOutMS is how long after its pipeline started this node emitted
	// its first output document — the first-batch latency that shows how
	// quickly results began flowing downstream, as opposed to how long
	// the node stayed busy. Omitted when the node emitted nothing.
	FirstOutMS float64 `json:"first_out_ms,omitempty"`
	// DocsIn and DocsOut count documents entering and leaving the node.
	DocsIn  int64 `json:"docs_in"`
	DocsOut int64 `json:"docs_out"`
	// Retries counts transient LLM failures retried inside the node;
	// BackoffMS is the time the node's workers spent stalled in retry
	// backoff (not counted as busy).
	Retries   int64   `json:"retries,omitempty"`
	BackoffMS float64 `json:"backoff_ms,omitempty"`
	// Error records why the node failed, for partial results served under
	// degraded mode ("" and omitted on success).
	Error string `json:"error,omitempty"`
	// LLM activity dispatched by this node, each call counted exactly
	// once (shared subtrees report on their own nodes, not per consumer).
	// Token counts are true upstream spend: cache hits cost zero tokens.
	LLMCalls         int64 `json:"llm_calls"`
	PromptTokens     int64 `json:"llm_prompt_tokens"`
	CompletionTokens int64 `json:"llm_completion_tokens"`
	CacheHits        int64 `json:"llm_cache_hits"`
	// Proxy-cascade counters (llmFilterCascade nodes only; omitted
	// elsewhere): documents escalated to the full LLM, kept on proxy
	// score alone, and dropped on proxy score alone.
	Escalations  int64 `json:"escalations,omitempty"`
	ProxyKept    int64 `json:"proxy_kept,omitempty"`
	ProxyDropped int64 `json:"proxy_dropped,omitempty"`
}

// NodeExec pairs a plan node with its runtime.
type NodeExec struct {
	ID      string      `json:"id"`
	Op      string      `json:"op"`
	Runtime NodeRuntime `json:"runtime"`
}

// ExecDetail is the EXPLAIN ANALYZE summary of one executed query.
type ExecDetail struct {
	// WallMS is end-to-end execution time (planning excluded).
	WallMS float64 `json:"wall_ms"`
	// Budget is the per-query worker budget the scheduler split across
	// concurrently-running nodes.
	Budget int `json:"budget"`
	// Branches is how many pipelines were scheduled (independent subtrees
	// plus the output pipeline).
	Branches int `json:"branches"`
	// Nodes lists runtime per executed plan node in topological order.
	// Nodes that lower to no physical stage (count, fraction, project —
	// answer shaping resolved after execution) are absent.
	Nodes []NodeExec `json:"nodes"`
}

// Node returns the runtime entry for a plan node (nil if the node did not
// lower to physical stages).
func (d *ExecDetail) Node(id string) *NodeExec {
	for i := range d.Nodes {
		if d.Nodes[i].ID == id {
			return &d.Nodes[i]
		}
	}
	return nil
}

// buildExecDetail aggregates a merged execution trace back onto plan
// nodes via stage tags.
func buildExecDetail(plan *LogicalPlan, trace *docset.Trace, start time.Time, wall time.Duration, budget, branches int) *ExecDetail {
	d := &ExecDetail{
		WallMS:   roundMS(wall),
		Budget:   budget,
		Branches: branches,
	}
	order, err := plan.topoOrder()
	if err != nil {
		// Run already executed this plan, so the order cannot fail; fall
		// back to declaration order defensively.
		order = make([]int, len(plan.Nodes))
		for i := range order {
			order[i] = i
		}
	}
	for _, idx := range order {
		n := plan.Nodes[idx]
		nts := trace.Tagged(n.ID)
		if len(nts) == 0 {
			continue
		}
		ne := NodeExec{ID: n.ID, Op: n.Op}
		r := &ne.Runtime
		r.DocsIn = nts[0].In
		r.DocsOut = nts[len(nts)-1].Out
		var first, last time.Time
		for _, nt := range nts {
			r.BusyMS += roundMS(nt.Duration)
			r.Retries += nt.Retries
			r.BackoffMS += roundMS(time.Duration(nt.BackoffNS))
			if fo := nt.FirstOutNS; fo > 0 {
				ms := roundMS(time.Duration(fo))
				if ms == 0 {
					// Sub-precision but real: keep it visibly nonzero.
					ms = 0.001
				}
				if r.FirstOutMS == 0 || ms < r.FirstOutMS {
					r.FirstOutMS = ms
				}
			}
			if nt.Err != "" && r.Error == "" {
				r.Error = nt.Err
			}
			r.LLMCalls += nt.LLMCalls
			r.PromptTokens += nt.PromptTokens
			r.CompletionTokens += nt.CompletionTokens
			r.CacheHits += nt.CacheHits
			r.Escalations += nt.Escalations
			r.ProxyKept += nt.ProxyKept
			r.ProxyDropped += nt.ProxyDropped
			s, e := nt.Window()
			if !s.IsZero() && (first.IsZero() || s.Before(first)) {
				first = s
			}
			if e.After(last) {
				last = e
			}
		}
		if !first.IsZero() {
			r.StartMS = roundMS(first.Sub(start))
			r.EndMS = roundMS(last.Sub(start))
			r.WallMS = roundMS(last.Sub(first))
		}
		d.Nodes = append(d.Nodes, ne)
	}
	return d
}

func roundMS(d time.Duration) float64 {
	return math.Round(float64(d)/float64(time.Millisecond)*1000) / 1000
}

// execSummary is the query-level half of the annotated-plan wire format:
// ExecDetail minus the per-node list (which is inlined onto the nodes).
type execSummary struct {
	WallMS   float64 `json:"wall_ms"`
	Budget   int     `json:"budget"`
	Branches int     `json:"branches"`
}

// AnnotatedJSON renders the plan in the Plan API wire format with each
// node carrying its measured runtime — the "executed" plan of EXPLAIN
// ANALYZE. Nodes without physical stages carry no runtime object; the
// query-level summary (wall, budget, branches) rides along as "exec".
func (p *LogicalPlan) AnnotatedJSON(d *ExecDetail) string {
	q := *p
	q.normalize()
	type annotatedNode struct {
		PlanNode
		Runtime *NodeRuntime `json:"runtime,omitempty"`
	}
	type annotatedPlan struct {
		Nodes  []annotatedNode `json:"nodes"`
		Output string          `json:"output,omitempty"`
		Exec   *execSummary    `json:"exec,omitempty"`
	}
	out := annotatedPlan{Output: q.Output}
	for _, n := range q.Nodes {
		an := annotatedNode{PlanNode: n}
		if d != nil {
			if ne := d.Node(n.ID); ne != nil {
				rt := ne.Runtime
				an.Runtime = &rt
			}
		}
		out.Nodes = append(out.Nodes, an)
	}
	if d != nil {
		out.Exec = &execSummary{WallMS: d.WallMS, Budget: d.Budget, Branches: d.Branches}
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b)
}
