package luna

import (
	"fmt"
	"sort"
	"strings"
)

// AnswerKind classifies the shape of a query result.
type AnswerKind string

// Answer shapes.
const (
	AnswerNumber AnswerKind = "number"
	AnswerTable  AnswerKind = "table"
	AnswerList   AnswerKind = "list"
	AnswerText   AnswerKind = "text"
)

// Answer is the typed result of a Luna query (or the parsed result of the
// RAG baseline, for comparison).
type Answer struct {
	Kind   AnswerKind
	Number float64
	// Table maps group keys to aggregate values (breakdown answers).
	Table map[string]float64
	// List holds ordered values (list and top-k answers).
	List []string
	// Text holds generated/narrative answers.
	Text string
	// Refused marks a model refusal (RAG baseline only; Luna never
	// refuses because aggregation happens in the engine, §7.2).
	Refused bool
}

// String renders the answer for display.
func (a Answer) String() string {
	if a.Refused {
		return "(refused) " + a.Text
	}
	switch a.Kind {
	case AnswerNumber:
		if a.Number == float64(int64(a.Number)) {
			return fmt.Sprintf("%d", int64(a.Number))
		}
		return fmt.Sprintf("%.3f", a.Number)
	case AnswerTable:
		keys := make([]string, 0, len(a.Table))
		for k := range a.Table {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			v := a.Table[k]
			if v == float64(int64(v)) {
				parts[i] = fmt.Sprintf("%s=%d", k, int64(v))
			} else {
				parts[i] = fmt.Sprintf("%s=%.2f", k, v)
			}
		}
		return strings.Join(parts, ", ")
	case AnswerList:
		return strings.Join(a.List, ", ")
	default:
		return a.Text
	}
}

// NumberAnswer builds a numeric answer.
func NumberAnswer(v float64) Answer { return Answer{Kind: AnswerNumber, Number: v} }

// TableAnswer builds a breakdown answer.
func TableAnswer(t map[string]float64) Answer { return Answer{Kind: AnswerTable, Table: t} }

// ListAnswer builds an ordered-list answer.
func ListAnswer(items ...string) Answer { return Answer{Kind: AnswerList, List: items} }

// TextAnswer builds a narrative answer.
func TextAnswer(text string) Answer { return Answer{Kind: AnswerText, Text: text} }
