package luna

import (
	"context"
	"strings"
	"testing"

	"aryn/internal/docmodel"
	"aryn/internal/docset"
	"aryn/internal/index"
	"aryn/internal/llm"
)

func TestPlanStringAndDescribe(t *testing.T) {
	plan := &LogicalPlan{Ops: []LogicalOp{
		{Op: OpQueryDatabase, Keyword: "engine", Filters: []FilterSpec{{Field: "us_state", Kind: "term", Value: "KY"}}},
		{Op: OpQueryVectorDatabase, Query: "bird strikes", K: 5},
		{Op: OpBasicFilter, Filters: []FilterSpec{{Field: "engines", Kind: "gte", Value: 1}}},
		{Op: OpLLMFilter, Question: "birds?"},
		{Op: OpLLMExtract, Fields: []llm.FieldSpec{{Name: "damaged_part"}}},
		{Op: OpGroupByAggregate, Key: "us_state", Agg: "count"},
		{Op: OpGroupByAggregate, Key: "", Agg: "avg", ValueField: "flightTime"},
		{Op: OpLLMCluster, K: 3},
		{Op: OpTopK, Field: "value", K: 2},
		{Op: OpCount},
		{Op: OpFraction, Question: "engine problems?"},
		{Op: OpLimit, K: 10},
		{Op: OpProject, ProjectFields: []string{"registration"}},
		{Op: OpLLMGenerate, Instruction: "summarize"},
		{Op: "mystery"},
	}}
	s := plan.String()
	for _, want := range []string{
		`queryDatabase(keyword="engine", us_state term KY)`,
		`queryVectorDatabase("bird strikes", k=5)`,
		"basicFilter(engines gte 1)",
		`llmFilter("birds?")`,
		"llmExtract(damaged_part)",
		"groupByAggregate(by=us_state, count)",
		"groupByAggregate(by=, avg(flightTime))",
		"llmCluster(k=3)",
		"topK(value, k=2)",
		"count()",
		`fraction("engine problems?")`,
		"limit(10)",
		"project(registration)",
		`llmGenerate("summarize")`,
		"mystery(?)",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string missing %q:\n%s", want, s)
		}
	}
	empty := LogicalOp{Op: OpQueryDatabase}
	if empty.Describe() != "queryDatabase(scan all)" {
		t.Errorf("empty scan describe = %q", empty.Describe())
	}
}

func TestExecutorRangeFiltersAndCluster(t *testing.T) {
	store := clusterStore(t)
	ec := docset.NewContext(docset.WithLLM(llm.NewSim(1)))
	ex := &Executor{EC: ec, Store: store}

	// gte/lte filters exercise compileFilters' numeric paths.
	res, err := ex.Run(context.Background(), &LogicalPlan{Ops: []LogicalOp{
		{Op: OpQueryDatabase, Filters: []FilterSpec{
			{Field: "hours", Kind: "gte", Value: 100},
			{Field: "hours", Kind: "lte", Value: "300"},
		}},
		{Op: OpCount},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Number != 2 {
		t.Errorf("range count = %v", res.Answer.Number)
	}

	// llmCluster terminal produces a label table.
	res2, err := ex.Run(context.Background(), &LogicalPlan{Ops: []LogicalOp{
		{Op: OpQueryDatabase},
		{Op: OpLLMCluster, K: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Answer.Kind != AnswerTable || len(res2.Answer.Table) == 0 {
		t.Errorf("cluster answer = %+v", res2.Answer)
	}
}

func clusterStore(t *testing.T) *index.Store {
	t.Helper()
	store := index.NewStore()
	for i, spec := range []struct {
		hours int
		text  string
	}{
		{50, "engine failure power loss engine cylinder"},
		{150, "engine power loss fuel engine"},
		{250, "crosswind landing runway wind gust"},
		{400, "gusting wind runway excursion wind"},
	} {
		d := docmodel.New(string(rune('A' + i)))
		d.SetProperty("hours", spec.hours)
		d.Text = spec.text
		if err := store.PutDocument(d); err != nil {
			t.Fatal(err)
		}
	}
	return store
}
