package luna

import (
	"math/rand"
	"strings"

	"aryn/internal/llm"
)

// BuildPlanPrompt assembles the planning prompt exactly as §6.1
// prescribes: the DocSet schema with examples, the logical operator
// catalogue, few-shot example plans, and the user question, with an
// instruction to emit JSON.
func BuildPlanPrompt(schema Schema, question string) string {
	var sb strings.Builder
	sb.WriteString(llm.TaskPlan + "\n")
	sb.WriteString("You are a query planner. Decompose the user question into a JSON plan DAG over the logical operators below. Respond with a single JSON object {\"nodes\": [{\"id\": ..., \"op\": ..., \"inputs\": [...], ...params}], \"output\": <id>}. Source operators take no inputs, join takes two, everything else takes one.\n")
	sb.WriteString(schema.PromptBlock())
	sb.WriteString(operatorCatalogue)
	sb.WriteString(fewShotExamples)
	sb.WriteString("QUESTION: " + question + "\n")
	return sb.String()
}

const operatorCatalogue = `OPERATORS:
- queryDatabase(filters, keyword): scan the index with property filters and/or keyword search (source, no inputs)
- queryVectorDatabase(query, k): semantic search over document chunks (source, no inputs)
- basicFilter(filters): property predicate on the current set
- llmFilter(question): keep documents for which the LLM answers yes
- llmExtract(fields): extract new properties from document text
- groupByAggregate(key, agg, value_field): group and aggregate (count/sum/avg/min/max)
- llmCluster(k): k-means cluster documents by semantic similarity
- topK(field, k): keep the k documents with the largest field value
- count(): count documents
- fraction(question): fraction of current documents satisfying the predicate
- limit(n) / project(project_fields) / llmGenerate(instruction)
- join(left_key, right_key, join_kind, prefix): combine two inputs on equal property values (inner/left/semi/anti); right-side properties merge under "<prefix>."
`

const fewShotExamples = `EXAMPLES:
Q: How many incidents were there in Kentucky?
A: {"nodes":[{"id":"n1","op":"queryDatabase","filters":[{"field":"us_state","kind":"term","value":"KY"}]},{"id":"n2","op":"count","inputs":["n1"]}],"output":"n2"}
Q: What was the most commonly damaged part of the aircraft?
A: {"nodes":[{"id":"n1","op":"queryDatabase"},{"id":"n2","op":"llmExtract","inputs":["n1"],"fields":[{"name":"damaged_part","type":"string"}]},{"id":"n3","op":"groupByAggregate","inputs":["n2"],"key":"damaged_part","agg":"count"},{"id":"n4","op":"topK","inputs":["n3"],"field":"value","k":1}],"output":"n4"}
Q: Which incidents involved lightning strikes?
A: {"nodes":[{"id":"n1","op":"queryDatabase"},{"id":"n2","op":"llmFilter","inputs":["n1"],"question":"Does the document indicate lightning strikes?"},{"id":"n3","op":"project","inputs":["n2"],"project_fields":["accidentNumber"]}],"output":"n3"}
Q: For fatal incidents, list other incidents in the same state.
A: {"nodes":[{"id":"n1","op":"queryDatabase","filters":[{"field":"fatalities","kind":"gte","value":1}]},{"id":"n2","op":"queryDatabase"},{"id":"n3","op":"join","inputs":["n1","n2"],"left_key":"us_state","right_key":"us_state","join_kind":"inner","prefix":"peer"},{"id":"n4","op":"project","inputs":["n3"],"project_fields":["accidentNumber","peer.accidentNumber"]}],"output":"n4"}
`

// PlannerSkill is the query-planning capability registered on the Sim
// model. It answers TaskPlan prompts by running the semantic parser over
// the schema and question found in the prompt — using only information
// the prompt carries, like a hosted model would.
type PlannerSkill struct{}

// Match reports whether the request is a planning prompt.
func (PlannerSkill) Match(req llm.Request) bool {
	return strings.HasPrefix(req.Prompt, llm.TaskPlan)
}

// Run parses the prompt's schema and question and emits the plan JSON.
func (PlannerSkill) Run(_ *rand.Rand, req llm.Request) (string, error) {
	schema := parseSchemaBlock(req.Prompt)
	question := promptQuestion(req.Prompt)
	p := &parser{schema: schema}
	plan, err := p.Parse(question)
	if err != nil {
		return `{"nodes":[]}`, nil // models emit degenerate plans, not errors
	}
	return plan.JSON(), nil
}

func promptQuestion(prompt string) string {
	idx := strings.LastIndex(prompt, "QUESTION: ")
	if idx < 0 {
		return ""
	}
	q := prompt[idx+len("QUESTION: "):]
	if nl := strings.Index(q, "\n"); nl >= 0 {
		q = q[:nl]
	}
	return strings.TrimSpace(q)
}

var _ llm.Skill = PlannerSkill{}
