package luna

import (
	"math/rand"
	"strings"

	"aryn/internal/llm"
)

// BuildPlanPrompt assembles the planning prompt exactly as §6.1
// prescribes: the DocSet schema with examples, the logical operator
// catalogue, few-shot example plans, and the user question, with an
// instruction to emit JSON.
func BuildPlanPrompt(schema Schema, question string) string {
	var sb strings.Builder
	sb.WriteString(llm.TaskPlan + "\n")
	sb.WriteString("You are a query planner. Decompose the user question into a JSON plan over the logical operators below. Respond with a single JSON object {\"ops\": [...]}.\n")
	sb.WriteString(schema.PromptBlock())
	sb.WriteString(operatorCatalogue)
	sb.WriteString(fewShotExamples)
	sb.WriteString("QUESTION: " + question + "\n")
	return sb.String()
}

const operatorCatalogue = `OPERATORS:
- queryDatabase(filters, keyword): scan the index with property filters and/or keyword search
- queryVectorDatabase(query, k): semantic search over document chunks
- basicFilter(filters): property predicate on the current set
- llmFilter(question): keep documents for which the LLM answers yes
- llmExtract(fields): extract new properties from document text
- groupByAggregate(key, agg, value_field): group and aggregate (count/sum/avg/min/max)
- llmCluster(k): k-means cluster documents by semantic similarity
- topK(field, k): keep the k documents with the largest field value
- count(): count documents
- fraction(question): fraction of current documents satisfying the predicate
- limit(n) / project(project_fields) / llmGenerate(instruction)
`

const fewShotExamples = `EXAMPLES:
Q: How many incidents were there in Kentucky?
A: {"ops":[{"op":"queryDatabase","filters":[{"field":"us_state","kind":"term","value":"KY"}]},{"op":"count"}]}
Q: What was the most commonly damaged part of the aircraft?
A: {"ops":[{"op":"queryDatabase"},{"op":"llmExtract","fields":[{"name":"damaged_part","type":"string"}]},{"op":"groupByAggregate","key":"damaged_part","agg":"count"},{"op":"topK","field":"value","k":1}]}
Q: Which incidents involved lightning strikes?
A: {"ops":[{"op":"queryDatabase"},{"op":"llmFilter","question":"Does the document indicate lightning strikes?"},{"op":"project","project_fields":["accidentNumber"]}]}
`

// PlannerSkill is the query-planning capability registered on the Sim
// model. It answers TaskPlan prompts by running the semantic parser over
// the schema and question found in the prompt — using only information
// the prompt carries, like a hosted model would.
type PlannerSkill struct{}

// Match reports whether the request is a planning prompt.
func (PlannerSkill) Match(req llm.Request) bool {
	return strings.HasPrefix(req.Prompt, llm.TaskPlan)
}

// Run parses the prompt's schema and question and emits the plan JSON.
func (PlannerSkill) Run(_ *rand.Rand, req llm.Request) (string, error) {
	schema := parseSchemaBlock(req.Prompt)
	question := promptQuestion(req.Prompt)
	p := &parser{schema: schema}
	plan, err := p.Parse(question)
	if err != nil {
		return `{"ops":[]}`, nil // models emit degenerate plans, not errors
	}
	return plan.JSON(), nil
}

func promptQuestion(prompt string) string {
	idx := strings.LastIndex(prompt, "QUESTION: ")
	if idx < 0 {
		return ""
	}
	q := prompt[idx+len("QUESTION: "):]
	if nl := strings.Index(q, "\n"); nl >= 0 {
		q = q[:nl]
	}
	return strings.TrimSpace(q)
}

var _ llm.Skill = PlannerSkill{}
