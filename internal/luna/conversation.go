package luna

import (
	"context"
	"strings"
	"sync"
)

// Conversation wraps a Service with history so users can ask follow-up
// questions that implicitly refer to the previous query — "what about
// incidents without substantial damage", "show only results in
// California" (§6.2).
//
// Ask, Last, and Turns are safe for concurrent use: an internal mutex
// serializes turns so parallel clients of one conversation cannot
// interleave history (the serving layer relies on this). Direct History
// reads are only safe once no Ask is in flight.
type Conversation struct {
	Service *Service
	// History records every exchange in order.
	History []*Result

	mu sync.Mutex
}

// NewConversation starts an empty conversation over the service.
func NewConversation(s *Service) *Conversation { return &Conversation{Service: s} }

var followUpPrefixes = []string{
	"what about", "how about", "show only", "and what about", "now show", "only",
}

// followUpFragment returns the referring fragment if the question is a
// follow-up ("" otherwise).
func followUpFragment(question string) string {
	q := strings.ToLower(strings.TrimSpace(question))
	for _, p := range followUpPrefixes {
		if strings.HasPrefix(q, p) {
			return strings.TrimSpace(strings.TrimSuffix(q[len(p):], "?"))
		}
	}
	return ""
}

// Ask answers the question, resolving follow-ups against the previous
// plan: the fragment's filters replace same-field filters in the prior
// plan's root scan while the terminal shape is kept. Turns are serialized:
// a follow-up always resolves against a fully recorded previous result.
func (c *Conversation) Ask(ctx context.Context, question string) (*Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fragment := followUpFragment(question)
	if fragment == "" || len(c.History) == 0 {
		res, err := c.Service.Ask(ctx, question)
		if err != nil {
			return nil, err
		}
		c.History = append(c.History, res)
		return res, nil
	}

	prev := c.History[len(c.History)-1]
	merged := c.mergeFollowUp(prev.Rewritten, fragment)
	res, err := c.Service.RunPlan(ctx, question, merged)
	if err != nil {
		return nil, err
	}
	c.History = append(c.History, res)
	return res, nil
}

// mergeFollowUp rewrites the previous plan with the fragment's conditions.
func (c *Conversation) mergeFollowUp(prev *LogicalPlan, fragment string) *LogicalPlan {
	st := &parseState{
		parser:   &parser{schema: c.Service.Planner.Schema},
		original: fragment,
		text:     " " + strings.ToLower(fragment) + " ",
	}
	st.extractFilters()

	plan := &LogicalPlan{Ops: append([]LogicalOp(nil), prev.Ops...)}
	if len(plan.Ops) == 0 || plan.Ops[0].Op != OpQueryDatabase && plan.Ops[0].Op != OpQueryVectorDatabase {
		return plan
	}
	root := plan.Ops[0]
	// Replace same-field filters, append new ones.
	newFields := map[string]bool{}
	for _, f := range st.filters {
		newFields[f.Field] = true
	}
	var kept []FilterSpec
	for _, f := range root.Filters {
		if !newFields[f.Field] {
			kept = append(kept, f)
		}
	}
	root.Filters = append(kept, st.filters...)
	plan.Ops[0] = root

	// Append new semantic predicates (dedup against existing questions).
	existing := map[string]bool{}
	for _, op := range plan.Ops {
		if op.Op == OpLLMFilter {
			existing[op.Question] = true
		}
	}
	var withPreds []LogicalOp
	withPreds = append(withPreds, plan.Ops[0])
	for _, pred := range st.llmPreds {
		q := "Does the document indicate " + pred + "?"
		if !existing[q] {
			withPreds = append(withPreds, LogicalOp{Op: OpLLMFilter, Question: q})
		}
	}
	withPreds = append(withPreds, plan.Ops[1:]...)
	plan.Ops = withPreds
	return plan
}

// Last returns the most recent result (nil if none).
func (c *Conversation) Last() *Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.History) == 0 {
		return nil
	}
	return c.History[len(c.History)-1]
}

// Turns reports how many exchanges the conversation has recorded.
func (c *Conversation) Turns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.History)
}
