package luna

import (
	"context"
	"strings"
	"sync"
)

// Conversation wraps a Service with history so users can ask follow-up
// questions that implicitly refer to the previous query — "what about
// incidents without substantial damage", "show only results in
// California" (§6.2).
//
// Ask, Last, and Turns are safe for concurrent use: an internal mutex
// serializes turns so parallel clients of one conversation cannot
// interleave history (the serving layer relies on this). Direct History
// reads are only safe once no Ask is in flight.
type Conversation struct {
	Service *Service
	// History records every exchange in order.
	History []*Result

	mu sync.Mutex
}

// NewConversation starts an empty conversation over the service.
func NewConversation(s *Service) *Conversation { return &Conversation{Service: s} }

var followUpPrefixes = []string{
	"what about", "how about", "show only", "and what about", "now show", "only",
}

// followUpFragment returns the referring fragment if the question is a
// follow-up ("" otherwise).
func followUpFragment(question string) string {
	q := strings.ToLower(strings.TrimSpace(question))
	for _, p := range followUpPrefixes {
		if strings.HasPrefix(q, p) {
			return strings.TrimSpace(strings.TrimSuffix(q[len(p):], "?"))
		}
	}
	return ""
}

// Ask answers the question, resolving follow-ups against the previous
// plan: the fragment's filters replace same-field filters in the prior
// plan's root scan while the terminal shape is kept. Turns are serialized:
// a follow-up always resolves against a fully recorded previous result.
func (c *Conversation) Ask(ctx context.Context, question string) (*Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fragment := followUpFragment(question)
	if fragment == "" || len(c.History) == 0 {
		res, err := c.Service.Ask(ctx, question)
		if err != nil {
			// Propagate the partial result (if any) for degraded-mode
			// serving, but keep it out of history: a follow-up must never
			// resolve against a turn that failed.
			return res, err
		}
		c.History = append(c.History, res)
		return res, nil
	}

	prev := c.History[len(c.History)-1]
	merged := c.mergeFollowUp(prev.Rewritten, fragment)
	res, err := c.Service.RunPlan(ctx, question, merged)
	if err != nil {
		return res, err
	}
	c.History = append(c.History, res)
	return res, nil
}

// mergeFollowUp rewrites the previous plan's DAG with the fragment's
// conditions: new property filters replace same-field filters on every
// queryDatabase root, and new semantic predicates are inserted as
// llmFilter nodes directly downstream of the first root, keeping the
// terminal shape of the query.
func (c *Conversation) mergeFollowUp(prev *LogicalPlan, fragment string) *LogicalPlan {
	st := &parseState{
		parser:   &parser{schema: c.Service.Planner.Schema},
		original: fragment,
		text:     " " + strings.ToLower(fragment) + " ",
	}
	st.extractFilters()

	prev.normalize()
	plan := prev.Clone()

	// Replace same-field filters, append new ones, on each scan root.
	newFields := map[string]bool{}
	for _, f := range st.filters {
		newFields[f.Field] = true
	}
	var firstRoot string
	for i := range plan.Nodes {
		n := &plan.Nodes[i]
		if len(n.Inputs) != 0 {
			continue
		}
		if firstRoot == "" && (n.Op == OpQueryDatabase || n.Op == OpQueryVectorDatabase) {
			firstRoot = n.ID
		}
		if n.Op != OpQueryDatabase {
			continue
		}
		var kept []FilterSpec
		for _, f := range n.Filters {
			if !newFields[f.Field] {
				kept = append(kept, f)
			}
		}
		n.Filters = append(kept, st.filters...)
	}
	if firstRoot == "" {
		return plan
	}

	// Insert new semantic predicates after the first root (dedup against
	// questions the plan already asks anywhere).
	existing := map[string]bool{}
	for _, n := range plan.Nodes {
		if n.Op == OpLLMFilter {
			existing[n.Question] = true
		}
	}
	downstream := plan.consumers(firstRoot)
	cur := firstRoot
	for _, pred := range st.llmPreds {
		q := "Does the document indicate " + pred + "?"
		if existing[q] {
			continue
		}
		existing[q] = true
		node := PlanNode{
			ID:        plan.freshID(),
			Inputs:    []string{cur},
			LogicalOp: LogicalOp{Op: OpLLMFilter, Question: q},
		}
		plan.Nodes = append(plan.Nodes, node)
		cur = node.ID
	}
	if cur != firstRoot {
		// Repoint the root's original consumers at the filter chain tail.
		for _, id := range downstream {
			n := plan.node(id)
			for j, in := range n.Inputs {
				if in == firstRoot {
					n.Inputs[j] = cur
				}
			}
		}
		if plan.Output == firstRoot {
			plan.Output = cur
		}
	}
	plan.syncLinearView()
	return plan
}

// Last returns the most recent result (nil if none).
func (c *Conversation) Last() *Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.History) == 0 {
		return nil
	}
	return c.History[len(c.History)-1]
}

// Turns reports how many exchanges the conversation has recorded.
func (c *Conversation) Turns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.History)
}
