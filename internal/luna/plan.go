// Package luna implements the paper's natural-language query service (§6):
// a planner that turns questions into DAGs of logical operators, a
// validator and rule-based rewriter, and a compiler/executor that lowers
// logical plans onto Sycamore DocSet pipelines with full lineage traces.
package luna

import (
	"encoding/json"
	"fmt"
	"strings"

	"aryn/internal/llm"
)

// Op names — the logical operator vocabulary exposed to the planner LLM
// (§6.1). Deliberately higher-level than the physical Sycamore operators:
// groupByAggregate and llmCluster compile to map/reduce chains, but the
// planner reasons in these terms.
const (
	OpQueryDatabase       = "queryDatabase"
	OpQueryVectorDatabase = "queryVectorDatabase"
	OpBasicFilter         = "basicFilter"
	OpLLMFilter           = "llmFilter"
	OpLLMExtract          = "llmExtract"
	OpGroupByAggregate    = "groupByAggregate"
	OpLLMCluster          = "llmCluster"
	OpTopK                = "topK"
	OpCount               = "count"
	OpFraction            = "fraction"
	OpLimit               = "limit"
	OpProject             = "project"
	OpLLMGenerate         = "llmGenerate"
)

// FilterSpec is one property predicate inside a plan.
type FilterSpec struct {
	Field string `json:"field"`
	// Kind is "term", "contains", "gte", or "lte".
	Kind  string `json:"kind"`
	Value any    `json:"value"`
}

// LogicalOp is one step of a logical plan. Exactly the fields relevant to
// its Op are set.
type LogicalOp struct {
	Op string `json:"op"`
	// queryDatabase / basicFilter
	Keyword string       `json:"keyword,omitempty"`
	Filters []FilterSpec `json:"filters,omitempty"`
	// llmFilter / fraction
	Question string `json:"question,omitempty"`
	// llmExtract
	Fields []llm.FieldSpec `json:"fields,omitempty"`
	// groupByAggregate
	Key        string `json:"key,omitempty"`
	Agg        string `json:"agg,omitempty"`
	ValueField string `json:"value_field,omitempty"`
	// topK / limit / llmCluster / queryVectorDatabase
	K int `json:"k,omitempty"`
	// topK
	Field string `json:"field,omitempty"`
	// project
	ProjectFields []string `json:"project_fields,omitempty"`
	// llmGenerate
	Instruction string `json:"instruction,omitempty"`
	// queryVectorDatabase
	Query string `json:"query,omitempty"`
}

// LogicalPlan is the ordered operator chain Luna executes. The paper's
// plans are DAGs; every plan the planner emits is a linear chain (joins
// are future work, §9).
type LogicalPlan struct {
	Ops []LogicalOp `json:"ops"`
}

// JSON renders the plan in the exact format the planner LLM emits and the
// UI displays (§6.2: "Luna exposes the plan ... as a simple JSON object").
func (p *LogicalPlan) JSON() string {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b)
}

// ParsePlan decodes planner output, tolerating surrounding prose by
// extracting the outermost JSON object.
func ParsePlan(text string) (*LogicalPlan, error) {
	start := strings.Index(text, "{")
	end := strings.LastIndex(text, "}")
	if start < 0 || end <= start {
		return nil, fmt.Errorf("luna: planner returned no JSON object: %q", truncate(text, 120))
	}
	var p LogicalPlan
	if err := json.Unmarshal([]byte(text[start:end+1]), &p); err != nil {
		return nil, fmt.Errorf("luna: plan JSON invalid: %w", err)
	}
	return &p, nil
}

// String renders a human-readable plan summary (one line per operator).
func (p *LogicalPlan) String() string {
	var sb strings.Builder
	for i, op := range p.Ops {
		fmt.Fprintf(&sb, "%d. %s", i+1, op.Describe())
		if i < len(p.Ops)-1 {
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// Describe renders one operator for plan display.
func (op LogicalOp) Describe() string {
	switch op.Op {
	case OpQueryDatabase:
		parts := []string{}
		if op.Keyword != "" {
			parts = append(parts, fmt.Sprintf("keyword=%q", op.Keyword))
		}
		for _, f := range op.Filters {
			parts = append(parts, fmt.Sprintf("%s %s %v", f.Field, f.Kind, f.Value))
		}
		if len(parts) == 0 {
			parts = append(parts, "scan all")
		}
		return "queryDatabase(" + strings.Join(parts, ", ") + ")"
	case OpQueryVectorDatabase:
		return fmt.Sprintf("queryVectorDatabase(%q, k=%d)", op.Query, op.K)
	case OpBasicFilter:
		parts := make([]string, len(op.Filters))
		for i, f := range op.Filters {
			parts[i] = fmt.Sprintf("%s %s %v", f.Field, f.Kind, f.Value)
		}
		return "basicFilter(" + strings.Join(parts, " AND ") + ")"
	case OpLLMFilter:
		return fmt.Sprintf("llmFilter(%q)", op.Question)
	case OpLLMExtract:
		names := make([]string, len(op.Fields))
		for i, f := range op.Fields {
			names[i] = f.Name
		}
		return "llmExtract(" + strings.Join(names, ", ") + ")"
	case OpGroupByAggregate:
		if op.Agg == "count" {
			return fmt.Sprintf("groupByAggregate(by=%s, count)", op.Key)
		}
		return fmt.Sprintf("groupByAggregate(by=%s, %s(%s))", op.Key, op.Agg, op.ValueField)
	case OpLLMCluster:
		return fmt.Sprintf("llmCluster(k=%d)", op.K)
	case OpTopK:
		return fmt.Sprintf("topK(%s, k=%d)", op.Field, op.K)
	case OpCount:
		return "count()"
	case OpFraction:
		return fmt.Sprintf("fraction(%q)", op.Question)
	case OpLimit:
		return fmt.Sprintf("limit(%d)", op.K)
	case OpProject:
		return "project(" + strings.Join(op.ProjectFields, ", ") + ")"
	case OpLLMGenerate:
		return fmt.Sprintf("llmGenerate(%q)", op.Instruction)
	default:
		return op.Op + "(?)"
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
