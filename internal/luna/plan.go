package luna

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"aryn/internal/llm"
)

// Op names — the logical operator vocabulary exposed to the planner LLM
// (§6.1). Deliberately higher-level than the physical Sycamore operators:
// groupByAggregate and llmCluster compile to map/reduce chains, but the
// planner reasons in these terms.
const (
	OpQueryDatabase       = "queryDatabase"
	OpQueryVectorDatabase = "queryVectorDatabase"
	OpBasicFilter         = "basicFilter"
	OpLLMFilter           = "llmFilter"
	OpLLMExtract          = "llmExtract"
	OpGroupByAggregate    = "groupByAggregate"
	OpLLMCluster          = "llmCluster"
	OpTopK                = "topK"
	OpCount               = "count"
	OpFraction            = "fraction"
	OpLimit               = "limit"
	OpProject             = "project"
	OpLLMGenerate         = "llmGenerate"
	// OpLLMFilterCascade is llmFilter behind an embedding-similarity
	// proxy: documents scoring below Low are dropped and at or above High
	// kept without an LLM call; only the uncertain band escalates to the
	// full llmFilter predicate. The cost-based optimizer rewrites
	// llmFilter into this form; plans may also request it directly.
	OpLLMFilterCascade = "llmFilterCascade"
	// OpJoin combines two upstream pipelines on equal property values —
	// the §9 "extend Aryn to support joins" direction. It is the only
	// operator with two inputs, which is what makes plans DAGs rather
	// than chains.
	OpJoin = "join"
)

// FilterSpec is one property predicate inside a plan.
type FilterSpec struct {
	Field string `json:"field"`
	// Kind is "term", "contains", "gte", or "lte".
	Kind  string `json:"kind"`
	Value any    `json:"value"`
}

// LogicalOp is one step of a logical plan. Exactly the fields relevant to
// its Op are set.
type LogicalOp struct {
	Op string `json:"op"`
	// queryDatabase / basicFilter
	Keyword string       `json:"keyword,omitempty"`
	Filters []FilterSpec `json:"filters,omitempty"`
	// llmFilter / llmFilterCascade / fraction
	Question string `json:"question,omitempty"`
	// llmFilterCascade: the proxy threshold band. Proxy scores below Low
	// drop the document, at or above High keep it, in between escalate to
	// the LLM. Zero values select the docset defaults (no drop rung / the
	// cosine ceiling).
	Low  float64 `json:"low,omitempty"`
	High float64 `json:"high,omitempty"`
	// llmExtract
	Fields []llm.FieldSpec `json:"fields,omitempty"`
	// groupByAggregate
	Key        string `json:"key,omitempty"`
	Agg        string `json:"agg,omitempty"`
	ValueField string `json:"value_field,omitempty"`
	// topK / limit / llmCluster / queryVectorDatabase
	K int `json:"k,omitempty"`
	// topK / distinct
	Field string `json:"field,omitempty"`
	// project
	ProjectFields []string `json:"project_fields,omitempty"`
	// llmGenerate
	Instruction string `json:"instruction,omitempty"`
	// queryVectorDatabase
	Query string `json:"query,omitempty"`
	// join: the equality keys on the left (first input) and right
	// (second input) side, the join kind (inner/left/semi/anti, default
	// inner), and the namespace prefix under which right-side properties
	// are merged (default "right").
	LeftKey  string `json:"left_key,omitempty"`
	RightKey string `json:"right_key,omitempty"`
	JoinKind string `json:"join_kind,omitempty"`
	Prefix   string `json:"prefix,omitempty"`
}

// PlanNode is one vertex of a logical plan DAG: a unique ID, the IDs of
// the nodes whose output it consumes (empty for query roots, two for
// join, one for everything else), and the operator parameters.
type PlanNode struct {
	ID     string   `json:"id"`
	Inputs []string `json:"inputs,omitempty"`
	LogicalOp
}

// LogicalPlan is the operator DAG Luna executes, exposed to users "as a
// simple JSON object" (§6.2) in the form
//
//	{"nodes": [{"id": "n1", "op": ..., "inputs": [...], ...params}], "output": "n3"}
//
// Ops is the legacy linear-chain view. It is kept in sync for plans that
// are simple chains (which is every plan the grammar planner emits), so
// existing callers can keep reading plan.Ops; it is nil for plans with
// joins or multiple roots. Construction through either view works: plans
// built as LogicalPlan{Ops: ...} are up-converted to nodes on first use,
// and decoding accepts both the DAG form and the legacy {"ops": [...]}
// wire format.
type LogicalPlan struct {
	Nodes  []PlanNode `json:"nodes"`
	Output string     `json:"output"`
	// Ops is the linear projection of a chain-shaped plan (nil when the
	// DAG has joins or multiple roots). Treat it as read-only: edits to a
	// plan that already carries Nodes must go through Nodes.
	Ops []LogicalOp `json:"-"`
}

// Chain builds a linear DAG plan n1 -> n2 -> ... from an operator list —
// the up-conversion applied to legacy plans and the constructor the
// grammar planner uses.
func Chain(ops ...LogicalOp) *LogicalPlan {
	p := &LogicalPlan{Ops: append([]LogicalOp(nil), ops...)}
	p.normalize()
	return p
}

// normalize reconciles the two plan views: builds Nodes from a legacy Ops
// chain, infers a missing Output as the unique sink, and refreshes the
// linear Ops projection. Idempotent and cheap once synced.
func (p *LogicalPlan) normalize() {
	if len(p.Nodes) == 0 && len(p.Ops) > 0 {
		p.Nodes = make([]PlanNode, len(p.Ops))
		for i, op := range p.Ops {
			n := PlanNode{ID: fmt.Sprintf("n%d", i+1), LogicalOp: op}
			if i > 0 {
				n.Inputs = []string{fmt.Sprintf("n%d", i)}
			}
			p.Nodes[i] = n
		}
		p.Output = p.Nodes[len(p.Nodes)-1].ID
		return // a fresh chain: Ops already is the linear view
	}
	if p.Output == "" && len(p.Nodes) > 0 {
		// Tolerant decode: a single sink is unambiguous.
		sinks := p.sinks()
		if len(sinks) == 1 {
			p.Output = sinks[0]
		}
	}
	p.syncLinearView()
}

// sinks returns the IDs of nodes no other node consumes, in declaration
// order.
func (p *LogicalPlan) sinks() []string {
	consumed := map[string]bool{}
	for _, n := range p.Nodes {
		for _, in := range n.Inputs {
			consumed[in] = true
		}
	}
	var out []string
	for _, n := range p.Nodes {
		if !consumed[n.ID] {
			out = append(out, n.ID)
		}
	}
	return out
}

// node returns the named node (nil if absent).
func (p *LogicalPlan) node(id string) *PlanNode {
	for i := range p.Nodes {
		if p.Nodes[i].ID == id {
			return &p.Nodes[i]
		}
	}
	return nil
}

// consumers returns the IDs of nodes reading id's output, in declaration
// order.
func (p *LogicalPlan) consumers(id string) []string {
	var out []string
	for _, n := range p.Nodes {
		for _, in := range n.Inputs {
			if in == id {
				out = append(out, n.ID)
				break
			}
		}
	}
	return out
}

// freshID mints a node ID unused by the plan.
func (p *LogicalPlan) freshID() string {
	used := map[string]bool{}
	for _, n := range p.Nodes {
		used[n.ID] = true
	}
	for i := len(p.Nodes) + 1; ; i++ {
		id := fmt.Sprintf("n%d", i)
		if !used[id] {
			return id
		}
	}
}

// topoOrder returns node indices in a deterministic topological order
// (declaration order among ready nodes), or an error naming a dangling
// input or a cycle — the structural half of plan validation, also needed
// by the compiler.
func (p *LogicalPlan) topoOrder() ([]int, error) {
	index := map[string]int{}
	for i, n := range p.Nodes {
		if _, dup := index[n.ID]; dup {
			return nil, fmt.Errorf("duplicate node id %q", n.ID)
		}
		index[n.ID] = i
	}
	for _, n := range p.Nodes {
		for _, in := range n.Inputs {
			if _, ok := index[in]; !ok {
				return nil, fmt.Errorf("node %s: dangling input %q", n.ID, in)
			}
		}
	}
	done := make([]bool, len(p.Nodes))
	order := make([]int, 0, len(p.Nodes))
	for len(order) < len(p.Nodes) {
		progressed := false
		for i, n := range p.Nodes {
			if done[i] {
				continue
			}
			ready := true
			for _, in := range n.Inputs {
				if !done[index[in]] {
					ready = false
					break
				}
			}
			if ready {
				done[i] = true
				order = append(order, i)
				progressed = true
			}
		}
		if !progressed {
			var stuck []string
			for i, n := range p.Nodes {
				if !done[i] {
					stuck = append(stuck, n.ID)
				}
			}
			sort.Strings(stuck)
			return nil, fmt.Errorf("cycle involving nodes %s", strings.Join(stuck, ", "))
		}
	}
	return order, nil
}

// syncLinearView refreshes Ops: the operator chain when the DAG is a
// single path ending at Output, nil otherwise.
func (p *LogicalPlan) syncLinearView() {
	p.Ops = nil
	if len(p.Nodes) == 0 {
		return
	}
	var root *PlanNode
	for i := range p.Nodes {
		n := &p.Nodes[i]
		if len(n.Inputs) > 1 {
			return
		}
		if len(n.Inputs) == 0 {
			if root != nil {
				return // multiple roots
			}
			root = n
		}
		if len(p.consumers(n.ID)) > 1 {
			return
		}
	}
	if root == nil {
		return
	}
	ops := make([]LogicalOp, 0, len(p.Nodes))
	cur := root
	for {
		if len(ops) == len(p.Nodes) {
			return // longer walk than nodes: duplicate IDs, not a chain
		}
		ops = append(ops, cur.LogicalOp)
		next := p.consumers(cur.ID)
		if len(next) == 0 {
			break
		}
		cur = p.node(next[0])
	}
	if len(ops) != len(p.Nodes) || (p.Output != "" && cur.ID != p.Output) {
		return // disconnected components or output off the chain
	}
	p.Ops = ops
}

// Clone deep-copies the plan (nodes, edges, and parameter slices), so
// rewrites and user edits never alias the original.
func (p *LogicalPlan) Clone() *LogicalPlan {
	out := &LogicalPlan{Output: p.Output}
	out.Nodes = make([]PlanNode, len(p.Nodes))
	for i, n := range p.Nodes {
		c := n
		c.Inputs = append([]string(nil), n.Inputs...)
		c.LogicalOp = cloneOp(n.LogicalOp)
		out.Nodes[i] = c
	}
	out.Ops = make([]LogicalOp, len(p.Ops))
	for i, op := range p.Ops {
		out.Ops[i] = cloneOp(op)
	}
	return out
}

func cloneOp(op LogicalOp) LogicalOp {
	op.Filters = append([]FilterSpec(nil), op.Filters...)
	op.Fields = append([]llm.FieldSpec(nil), op.Fields...)
	op.ProjectFields = append([]string(nil), op.ProjectFields...)
	return op
}

// planWire is the canonical DAG wire format.
type planWire struct {
	Nodes  []PlanNode `json:"nodes"`
	Output string     `json:"output,omitempty"`
}

// MarshalJSON emits the DAG form, up-converting a legacy Ops-only plan
// first.
func (p *LogicalPlan) MarshalJSON() ([]byte, error) {
	q := *p
	q.normalize()
	return json.Marshal(planWire{Nodes: q.Nodes, Output: q.Output})
}

// UnmarshalJSON accepts both the DAG form {"nodes": [...], "output": ...}
// and the legacy linear form {"ops": [...]}, which is up-converted so old
// clients, golden files, and stored plans keep working unchanged.
func (p *LogicalPlan) UnmarshalJSON(data []byte) error {
	var probe struct {
		Nodes  []PlanNode  `json:"nodes"`
		Output string      `json:"output"`
		Ops    []LogicalOp `json:"ops"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return err
	}
	*p = LogicalPlan{}
	if len(probe.Nodes) > 0 {
		p.Nodes, p.Output = probe.Nodes, probe.Output
	} else {
		p.Ops = probe.Ops
	}
	p.normalize()
	return nil
}

// JSON renders the plan in the exact format the planner LLM emits and the
// UI displays (§6.2: "Luna exposes the plan ... as a simple JSON object").
func (p *LogicalPlan) JSON() string {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b)
}

// ParsePlan decodes planner output, tolerating surrounding prose by
// extracting the outermost JSON object. Both the DAG and the legacy
// linear format decode.
func ParsePlan(text string) (*LogicalPlan, error) {
	start := strings.Index(text, "{")
	end := strings.LastIndex(text, "}")
	if start < 0 || end <= start {
		return nil, fmt.Errorf("luna: planner returned no JSON object: %q", truncate(text, 120))
	}
	var p LogicalPlan
	if err := json.Unmarshal([]byte(text[start:end+1]), &p); err != nil {
		return nil, fmt.Errorf("luna: plan JSON invalid: %w", err)
	}
	return &p, nil
}

// String renders a human-readable plan summary: one numbered line per
// operator for chain plans (the historical format), and one line per node
// with its ID and input edges for DAGs.
func (p *LogicalPlan) String() string {
	q := *p
	q.normalize()
	var sb strings.Builder
	if len(q.Ops) > 0 {
		for i, op := range q.Ops {
			if i > 0 {
				sb.WriteString("\n")
			}
			fmt.Fprintf(&sb, "%d. %s", i+1, op.Describe())
		}
		return sb.String()
	}
	order, err := q.topoOrder()
	if err != nil {
		// Render in declaration order so even malformed plans display.
		order = make([]int, len(q.Nodes))
		for i := range order {
			order[i] = i
		}
	}
	for i, idx := range order {
		n := q.Nodes[idx]
		if i > 0 {
			sb.WriteString("\n")
		}
		fmt.Fprintf(&sb, "%s. %s", n.ID, n.Describe())
		if len(n.Inputs) > 0 {
			fmt.Fprintf(&sb, " <- %s", strings.Join(n.Inputs, ", "))
		}
		if n.ID == q.Output {
			sb.WriteString(" [output]")
		}
	}
	return sb.String()
}

// Describe renders one operator for plan display.
func (op LogicalOp) Describe() string {
	switch op.Op {
	case OpQueryDatabase:
		parts := []string{}
		if op.Keyword != "" {
			parts = append(parts, fmt.Sprintf("keyword=%q", op.Keyword))
		}
		for _, f := range op.Filters {
			parts = append(parts, fmt.Sprintf("%s %s %v", f.Field, f.Kind, f.Value))
		}
		if len(parts) == 0 {
			parts = append(parts, "scan all")
		}
		return "queryDatabase(" + strings.Join(parts, ", ") + ")"
	case OpQueryVectorDatabase:
		return fmt.Sprintf("queryVectorDatabase(%q, k=%d)", op.Query, op.K)
	case OpBasicFilter:
		parts := make([]string, len(op.Filters))
		for i, f := range op.Filters {
			parts[i] = fmt.Sprintf("%s %s %v", f.Field, f.Kind, f.Value)
		}
		return "basicFilter(" + strings.Join(parts, " AND ") + ")"
	case OpLLMFilter:
		return fmt.Sprintf("llmFilter(%q)", op.Question)
	case OpLLMFilterCascade:
		return fmt.Sprintf("llmFilterCascade(%q, band=%g..%g)", op.Question, op.Low, op.High)
	case OpLLMExtract:
		names := make([]string, len(op.Fields))
		for i, f := range op.Fields {
			names[i] = f.Name
		}
		return "llmExtract(" + strings.Join(names, ", ") + ")"
	case OpGroupByAggregate:
		if op.Agg == "count" {
			return fmt.Sprintf("groupByAggregate(by=%s, count)", op.Key)
		}
		return fmt.Sprintf("groupByAggregate(by=%s, %s(%s))", op.Key, op.Agg, op.ValueField)
	case OpLLMCluster:
		return fmt.Sprintf("llmCluster(k=%d)", op.K)
	case OpTopK:
		return fmt.Sprintf("topK(%s, k=%d)", op.Field, op.K)
	case OpCount:
		return "count()"
	case OpFraction:
		return fmt.Sprintf("fraction(%q)", op.Question)
	case OpLimit:
		return fmt.Sprintf("limit(%d)", op.K)
	case OpProject:
		return "project(" + strings.Join(op.ProjectFields, ", ") + ")"
	case OpLLMGenerate:
		return fmt.Sprintf("llmGenerate(%q)", op.Instruction)
	case OpJoin:
		return fmt.Sprintf("join(%s, %s=%s)", joinKindOrDefault(op.JoinKind), op.LeftKey, op.RightKey)
	case opDistinct:
		return fmt.Sprintf("distinct(%s)", op.Field)
	default:
		return op.Op + "(?)"
	}
}

// joinKindOrDefault applies the inner-join default.
func joinKindOrDefault(kind string) string {
	if kind == "" {
		return "inner"
	}
	return kind
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
