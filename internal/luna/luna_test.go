package luna

import (
	"context"
	"strings"
	"testing"

	"aryn/internal/docmodel"
	"aryn/internal/docset"
	"aryn/internal/index"
	"aryn/internal/llm"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	plan := &LogicalPlan{Ops: []LogicalOp{
		{Op: OpQueryDatabase, Filters: []FilterSpec{{Field: "us_state", Kind: "term", Value: "KY"}}},
		{Op: OpLLMFilter, Question: "Does the document indicate birds?"},
		{Op: OpCount},
	}}
	parsed, err := ParsePlan(plan.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Ops) != 3 || parsed.Ops[1].Question != plan.Ops[1].Question {
		t.Errorf("round trip lost ops: %s", parsed.String())
	}
}

func TestParsePlanToleratesProse(t *testing.T) {
	text := "Sure! Here is the plan:\n{\"ops\":[{\"op\":\"count\"}]}\nHope that helps."
	plan, err := ParsePlan(text)
	if err != nil || len(plan.Ops) != 1 {
		t.Fatalf("ParsePlan: %v", err)
	}
	if _, err := ParsePlan("no json here"); err == nil {
		t.Error("missing JSON should error")
	}
	if _, err := ParsePlan("{not valid json}"); err == nil {
		t.Error("bad JSON should error")
	}
}

func TestValidateRejects(t *testing.T) {
	schema := testSchema()
	cases := []struct {
		name string
		plan *LogicalPlan
	}{
		{"empty", &LogicalPlan{}},
		{"unknown op", &LogicalPlan{Ops: []LogicalOp{{Op: OpQueryDatabase}, {Op: "teleport"}}}},
		{"unknown field", &LogicalPlan{Ops: []LogicalOp{{Op: OpQueryDatabase, Filters: []FilterSpec{{Field: "hallucinated", Kind: "term", Value: 1}}}}}},
		{"bad filter kind", &LogicalPlan{Ops: []LogicalOp{{Op: OpQueryDatabase, Filters: []FilterSpec{{Field: "us_state", Kind: "fuzzy", Value: 1}}}}}},
		{"group key unknown", &LogicalPlan{Ops: []LogicalOp{{Op: OpQueryDatabase}, {Op: OpGroupByAggregate, Key: "bogus", Agg: "count"}}}},
		{"agg field unknown", &LogicalPlan{Ops: []LogicalOp{{Op: OpQueryDatabase}, {Op: OpGroupByAggregate, Agg: "avg", ValueField: "bogus"}}}},
		{"bad agg", &LogicalPlan{Ops: []LogicalOp{{Op: OpQueryDatabase}, {Op: OpGroupByAggregate, Key: "us_state", Agg: "median"}}}},
		{"count not terminal", &LogicalPlan{Ops: []LogicalOp{{Op: OpQueryDatabase}, {Op: OpCount}, {Op: OpLimit, K: 5}}}},
		{"scan not root", &LogicalPlan{Ops: []LogicalOp{{Op: OpCount}}}},
		{"midplan scan", &LogicalPlan{Ops: []LogicalOp{{Op: OpQueryDatabase}, {Op: OpQueryDatabase}}}},
		{"llmFilter empty", &LogicalPlan{Ops: []LogicalOp{{Op: OpQueryDatabase}, {Op: OpLLMFilter}}}},
		{"project unknown field", &LogicalPlan{Ops: []LogicalOp{{Op: OpQueryDatabase}, {Op: OpProject, ProjectFields: []string{"bogus"}}}}},
		{"topK unknown field", &LogicalPlan{Ops: []LogicalOp{{Op: OpQueryDatabase}, {Op: OpTopK, Field: "bogus", K: 3}}}},
		{"cluster k=0", &LogicalPlan{Ops: []LogicalOp{{Op: OpQueryDatabase}, {Op: OpLLMCluster}}}},
	}
	for _, c := range cases {
		if err := Validate(c.plan, schema); err == nil {
			t.Errorf("%s: should be rejected", c.name)
		}
	}
}

func TestValidateAcceptsExtractedFields(t *testing.T) {
	plan := &LogicalPlan{Ops: []LogicalOp{
		{Op: OpQueryDatabase},
		{Op: OpLLMExtract, Fields: []llm.FieldSpec{{Name: "damaged_part", Type: "string"}}},
		{Op: OpGroupByAggregate, Key: "damaged_part", Agg: "count"},
		{Op: OpTopK, Field: "value", K: 3},
	}}
	if err := Validate(plan, testSchema()); err != nil {
		t.Errorf("extracted field should be usable downstream: %v", err)
	}
}

func TestRewriteFusesExtracts(t *testing.T) {
	plan := &LogicalPlan{Ops: []LogicalOp{
		{Op: OpQueryDatabase},
		{Op: OpLLMExtract, Fields: []llm.FieldSpec{{Name: "a", Type: "string"}}},
		{Op: OpLLMExtract, Fields: []llm.FieldSpec{{Name: "b", Type: "string"}, {Name: "a", Type: "string"}}},
		{Op: OpCount},
	}}
	out := Rewrite(plan, DefaultRewrites())
	extracts := 0
	for _, op := range out.Ops {
		if op.Op == OpLLMExtract {
			extracts++
			if len(op.Fields) != 2 {
				t.Errorf("fused fields = %d, want 2 (deduped)", len(op.Fields))
			}
		}
	}
	if extracts != 1 {
		t.Errorf("extracts after fuse = %d", extracts)
	}
	if len(plan.Ops) != 4 {
		t.Error("Rewrite must not mutate its input")
	}
}

func TestRewritePushesFilters(t *testing.T) {
	plan := &LogicalPlan{Ops: []LogicalOp{
		{Op: OpQueryDatabase, Filters: []FilterSpec{{Field: "us_state", Kind: "term", Value: "KY"}}},
		{Op: OpBasicFilter, Filters: []FilterSpec{{Field: "engines", Kind: "term", Value: 1}}},
		{Op: OpCount},
	}}
	out := Rewrite(plan, DefaultRewrites())
	if len(out.Ops) != 2 || len(out.Ops[0].Filters) != 2 {
		t.Errorf("filters not pushed: %s", out.String())
	}
}

func TestRewriteDropsDuplicateLLMFilters(t *testing.T) {
	plan := &LogicalPlan{Ops: []LogicalOp{
		{Op: OpQueryDatabase},
		{Op: OpLLMFilter, Question: "q?"},
		{Op: OpLLMFilter, Question: "q?"},
		{Op: OpCount},
	}}
	out := Rewrite(plan, DefaultRewrites())
	n := 0
	for _, op := range out.Ops {
		if op.Op == OpLLMFilter {
			n++
		}
	}
	if n != 1 {
		t.Errorf("duplicate llmFilter kept: %s", out.String())
	}
}

func TestRewriteDedupInsertion(t *testing.T) {
	plan := &LogicalPlan{Ops: []LogicalOp{{Op: OpQueryDatabase}, {Op: OpCount}}}
	opts := DefaultRewrites()
	opts.DedupByAccident = true
	out := Rewrite(plan, opts)
	if len(out.Ops) != 3 || out.Ops[1].Op != opDistinct || out.Ops[1].Field != "accidentNumber" {
		t.Errorf("dedup not inserted: %s", out.String())
	}
	// Default rewrites must NOT insert it (that's the paper's bug).
	out2 := Rewrite(plan, DefaultRewrites())
	for _, op := range out2.Ops {
		if op.Op == opDistinct {
			t.Error("dedup must be off by default")
		}
	}
}

// executorFixture indexes a small corpus and returns a ready executor.
func executorFixture(t *testing.T) (*Executor, *index.Store) {
	t.Helper()
	store := index.NewStore()
	mk := func(id, state, damage string, engines int, text string) {
		d := docmodel.New(id)
		d.SetProperty("accidentNumber", id)
		d.SetProperty("us_state", state)
		d.SetProperty("aircraftDamage", damage)
		d.SetProperty("engines", engines)
		d.Text = text
		if err := store.PutDocument(d); err != nil {
			t.Fatal(err)
		}
	}
	mk("A1", "KY", "Substantial", 1, "The airplane struck a flock of geese and sustained substantial damage to the left wing.")
	mk("A2", "KY", "Destroyed", 2, "The airplane entered a spin; substantial damage to the fuselage.")
	mk("A3", "CA", "Substantial", 1, "A hard landing resulted in substantial damage to the landing gear.")
	ec := docset.NewContext(docset.WithLLM(llm.NewSim(1)))
	return &Executor{EC: ec, Store: store}, store
}

func TestExecutorCount(t *testing.T) {
	ex, _ := executorFixture(t)
	res, err := ex.Run(context.Background(), &LogicalPlan{Ops: []LogicalOp{
		{Op: OpQueryDatabase, Filters: []FilterSpec{{Field: "us_state", Kind: "term", Value: "KY"}}},
		{Op: OpCount},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Kind != AnswerNumber || res.Answer.Number != 2 {
		t.Errorf("count = %+v", res.Answer)
	}
	if res.Trace == nil || res.Compiled == "" {
		t.Error("trace/compiled missing")
	}
}

func TestExecutorGroupAndTopK(t *testing.T) {
	ex, _ := executorFixture(t)
	res, err := ex.Run(context.Background(), &LogicalPlan{Ops: []LogicalOp{
		{Op: OpQueryDatabase},
		{Op: OpGroupByAggregate, Key: "us_state", Agg: "count"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Table["KY"] != 2 || res.Answer.Table["CA"] != 1 {
		t.Errorf("table = %v", res.Answer.Table)
	}

	res2, err := ex.Run(context.Background(), &LogicalPlan{Ops: []LogicalOp{
		{Op: OpQueryDatabase},
		{Op: OpGroupByAggregate, Key: "us_state", Agg: "count"},
		{Op: OpTopK, Field: "value", K: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Answer.List) != 1 || res2.Answer.List[0] != "KY" {
		t.Errorf("top = %v", res2.Answer.List)
	}
}

func TestExecutorGlobalAggregate(t *testing.T) {
	ex, _ := executorFixture(t)
	res, err := ex.Run(context.Background(), &LogicalPlan{Ops: []LogicalOp{
		{Op: OpQueryDatabase},
		{Op: OpGroupByAggregate, Key: "", Agg: "max", ValueField: "engines"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Kind != AnswerNumber || res.Answer.Number != 2 {
		t.Errorf("global max = %+v", res.Answer)
	}
}

func TestExecutorFraction(t *testing.T) {
	ex, _ := executorFixture(t)
	res, err := ex.Run(context.Background(), &LogicalPlan{Ops: []LogicalOp{
		{Op: OpQueryDatabase, Filters: []FilterSpec{{Field: "aircraftDamage", Kind: "term", Value: "Substantial"}}},
		{Op: OpFraction, Question: "Does the document indicate birds?"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Number != 0.5 { // A1 of {A1, A3}
		t.Errorf("fraction = %v", res.Answer.Number)
	}
}

func TestExecutorProjectAndDistinct(t *testing.T) {
	ex, _ := executorFixture(t)
	res, err := ex.Run(context.Background(), &LogicalPlan{Ops: []LogicalOp{
		{Op: OpQueryDatabase},
		{Op: opDistinct, Field: "us_state"},
		{Op: OpProject, ProjectFields: []string{"us_state"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answer.List) != 2 {
		t.Errorf("distinct projection = %v", res.Answer.List)
	}
}

func TestExecutorLLMFilterAndGenerate(t *testing.T) {
	ex, _ := executorFixture(t)
	res, err := ex.Run(context.Background(), &LogicalPlan{Ops: []LogicalOp{
		{Op: OpQueryDatabase},
		{Op: OpLLMFilter, Question: "Does the document indicate birds?"},
		{Op: OpLLMGenerate, Instruction: "summarize"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Kind != AnswerText || !strings.Contains(res.Answer.Text, "geese") {
		t.Errorf("generate = %+v", res.Answer)
	}
}

func TestExecutorRejectsBadPlans(t *testing.T) {
	ex, _ := executorFixture(t)
	if _, err := ex.Run(context.Background(), &LogicalPlan{}); err == nil {
		t.Error("empty plan should fail")
	}
	if _, err := ex.Run(context.Background(), &LogicalPlan{Ops: []LogicalOp{{Op: "bogus"}}}); err == nil {
		t.Error("bogus root should fail")
	}
}

func TestServiceEndToEndWithPlannerSkill(t *testing.T) {
	ex, store := executorFixture(t)
	sim := llm.NewSim(1)
	sim.Register(PlannerSkill{})
	svc := &Service{
		Planner:  NewPlanner(sim, InferSchema(store)),
		Executor: ex,
	}
	res, err := svc.Ask(context.Background(), "How many incidents were there in Kentucky?")
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Number != 2 {
		t.Errorf("end-to-end count = %v", res.Answer.Number)
	}
	if res.Plan == nil || res.Rewritten == nil {
		t.Error("plans missing from result")
	}
}

func TestRunPlanValidatesUserEdits(t *testing.T) {
	ex, store := executorFixture(t)
	sim := llm.NewSim(1)
	sim.Register(PlannerSkill{})
	svc := &Service{Planner: NewPlanner(sim, InferSchema(store)), Executor: ex}
	bad := &LogicalPlan{Ops: []LogicalOp{{Op: OpQueryDatabase, Filters: []FilterSpec{{Field: "nope", Kind: "term", Value: 1}}}}}
	if _, err := svc.RunPlan(context.Background(), "q", bad); err == nil {
		t.Error("user-edited invalid plan must be rejected")
	}
	good := &LogicalPlan{Ops: []LogicalOp{{Op: OpQueryDatabase}, {Op: OpCount}}}
	res, err := svc.RunPlan(context.Background(), "q", good)
	if err != nil || res.Answer.Number != 3 {
		t.Errorf("RunPlan: %v %v", res, err)
	}
}

func TestConversationFollowUpMergesFilters(t *testing.T) {
	ex, store := executorFixture(t)
	sim := llm.NewSim(1)
	sim.Register(PlannerSkill{})
	conv := NewConversation(&Service{Planner: NewPlanner(sim, InferSchema(store)), Executor: ex})
	ctx := context.Background()
	first, err := conv.Ask(ctx, "How many incidents involved substantial damage?")
	if err != nil {
		t.Fatal(err)
	}
	if first.Answer.Number != 2 {
		t.Fatalf("first = %v", first.Answer.Number)
	}
	second, err := conv.Ask(ctx, "show only results in California")
	if err != nil {
		t.Fatal(err)
	}
	if second.Answer.Number != 1 {
		t.Errorf("follow-up should keep damage filter and add CA: %v", second.Answer.Number)
	}
	if conv.Last() != second || len(conv.History) != 2 {
		t.Error("history bookkeeping wrong")
	}
}

func TestSchemaInferAndPromptRoundTrip(t *testing.T) {
	_, store := executorFixture(t)
	schema := InferSchema(store)
	if schema.Field("us_state") == nil || schema.Field("engines") == nil {
		t.Fatalf("schema = %+v", schema)
	}
	if schema.Field("engines").Type != "int" {
		t.Errorf("engines type = %s", schema.Field("engines").Type)
	}
	prompt := BuildPlanPrompt(schema, "How many?")
	back := parseSchemaBlock(prompt)
	if len(back.Fields) != len(schema.Fields) {
		t.Errorf("prompt round trip lost fields: %d vs %d", len(back.Fields), len(schema.Fields))
	}
	if promptQuestion(prompt) != "How many?" {
		t.Errorf("question round trip: %q", promptQuestion(prompt))
	}
}

func TestExtractFieldsUsed(t *testing.T) {
	plan := &LogicalPlan{Ops: []LogicalOp{
		{Op: OpQueryDatabase},
		{Op: OpLLMExtract, Fields: []llm.FieldSpec{{Name: "a"}}},
		{Op: OpLLMFilter, Question: "x?"},
	}}
	ex, per := ExtractFieldsUsed(plan)
	if ex != 1 || per != 2 {
		t.Errorf("ExtractFieldsUsed = %d, %d", ex, per)
	}
}

func TestAnswerString(t *testing.T) {
	if NumberAnswer(3).String() != "3" {
		t.Error("int render")
	}
	if NumberAnswer(0.125).String() != "0.125" {
		t.Error("float render")
	}
	if got := TableAnswer(map[string]float64{"b": 2, "a": 1}).String(); got != "a=1, b=2" {
		t.Errorf("table render = %q", got)
	}
	if ListAnswer("x", "y").String() != "x, y" {
		t.Error("list render")
	}
	r := Answer{Refused: true, Text: "no"}
	if !strings.Contains(r.String(), "refused") {
		t.Error("refusal render")
	}
}

func TestExecutorVectorRoot(t *testing.T) {
	ex, store := executorFixture(t)
	// Index chunks so the vector root has something to search.
	em := ex.EC.Embedder
	for _, d := range store.Documents() {
		err := store.PutChunk(index.Chunk{ID: d.ID + "-c", ParentID: d.ID, Text: d.Text, Vector: em.Embed(d.Text)})
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := ex.Run(context.Background(), &LogicalPlan{Ops: []LogicalOp{
		{Op: OpQueryVectorDatabase, Query: "flock of geese bird strike"},
		{Op: OpLimit, K: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Docs) != 1 || res.Docs[0].ID != "A1" {
		t.Fatalf("vector root = %v", res.Docs)
	}
}

func TestPlannerRepairLoop(t *testing.T) {
	// First response is an invalid plan; the planner re-prompts with the
	// validator's feedback and accepts the corrected plan.
	scripted := &llm.Scripted{Responses: []llm.Response{
		{Text: `{"ops":[{"op":"teleport"}]}`},
		{Text: `{"ops":[{"op":"queryDatabase"},{"op":"count"}]}`},
	}}
	p := NewPlanner(scripted, testSchema())
	raw, rewritten, err := p.Plan(context.Background(), "How many incidents?")
	if err != nil {
		t.Fatal(err)
	}
	if raw == nil || rewritten == nil || scripted.Calls() != 2 {
		t.Fatalf("repair loop: calls=%d", scripted.Calls())
	}
	// Repeated invalid plans exhaust MaxRepairs.
	bad := &llm.Scripted{Responses: []llm.Response{{Text: `{"ops":[{"op":"teleport"}]}`}}}
	p2 := NewPlanner(bad, testSchema())
	if _, _, err := p2.Plan(context.Background(), "q"); err == nil {
		t.Error("persistent invalid plans should fail")
	}
}

func TestConversationLastEmpty(t *testing.T) {
	conv := NewConversation(nil)
	if conv.Last() != nil {
		t.Error("empty conversation Last should be nil")
	}
}

func TestSchemaTypeInference(t *testing.T) {
	store := index.NewStore()
	d := docmodel.New("x")
	d.SetProperty("i", 1)
	d.SetProperty("f", 1.5)
	d.SetProperty("b", true)
	d.SetProperty("s", "str")
	if err := store.PutDocument(d); err != nil {
		t.Fatal(err)
	}
	// Mixed types degrade to string.
	d2 := docmodel.New("y")
	d2.SetProperty("i", "not a number")
	if err := store.PutDocument(d2); err != nil {
		t.Fatal(err)
	}
	schema := InferSchema(store)
	for field, want := range map[string]string{"i": "string", "f": "float", "b": "bool", "s": "string"} {
		if got := schema.Field(field).Type; got != want {
			t.Errorf("type(%s) = %s, want %s", field, got, want)
		}
	}
}
