package luna

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"aryn/internal/docmodel"
	"aryn/internal/docset"
	"aryn/internal/llm"
)

var errSentinel = errors.New("stream model exploded")

// RunStream must return the exact Result Run returns for the same plan —
// answer and documents byte-identical — while delivering every output
// document through OnPartial and publishing a live trace per pipeline.
func TestRunStreamMatchesRun(t *testing.T) {
	plans := map[string]*LogicalPlan{
		"filter-chain": {
			Nodes: []PlanNode{
				{ID: "n1", LogicalOp: LogicalOp{Op: OpQueryDatabase}},
				{ID: "n2", Inputs: []string{"n1"}, LogicalOp: LogicalOp{
					Op: OpLLMFilter, Question: "Does the document indicate substantial damage?"}},
			},
			Output: "n2",
		},
		"diamond-join": diamondPlan(),
		"count": {
			Nodes: []PlanNode{
				{ID: "n1", LogicalOp: LogicalOp{Op: OpQueryDatabase}},
				{ID: "n2", Inputs: []string{"n1"}, LogicalOp: LogicalOp{Op: OpCount}},
			},
			Output: "n2",
		},
	}
	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			ex, _ := executorFixture(t)
			ex.EC = docset.NewContext(docset.WithLLM(llm.NewSim(1)),
				docset.WithParallelism(4), docset.WithStreamBatch(2))

			batch, err := ex.Run(context.Background(), plan)
			if err != nil {
				t.Fatal(err)
			}

			var mu sync.Mutex
			var partial int
			var traces []*docset.Trace
			stream, err := ex.RunStream(context.Background(), plan, StreamHooks{
				OnPartial: func(docs []*docmodel.Document) {
					mu.Lock()
					partial += len(docs)
					mu.Unlock()
				},
				OnTrace: func(tr *docset.Trace) {
					mu.Lock()
					traces = append(traces, tr)
					mu.Unlock()
				},
			})
			if err != nil {
				t.Fatal(err)
			}

			if a, b := batch.Answer.String(), stream.Answer.String(); a != b {
				t.Errorf("answers differ: batch %q vs stream %q", a, b)
			}
			bd, _ := json.Marshal(batch.Docs)
			sd, _ := json.Marshal(stream.Docs)
			if string(bd) != string(sd) {
				t.Errorf("documents differ:\n%s\nvs\n%s", bd, sd)
			}
			if partial != len(stream.Docs) {
				t.Errorf("OnPartial saw %d docs, want %d", partial, len(stream.Docs))
			}
			// At least the output producer and the edge consumer registered.
			if len(traces) < 2 {
				t.Errorf("OnTrace saw %d pipelines, want >= 2", len(traces))
			}
		})
	}
}

// The EXPLAIN ANALYZE view gains first-batch latency: the output node
// reports when its first document flowed, within the node's busy bounds.
func TestExecDetailFirstOut(t *testing.T) {
	res, _ := runDiamond(t, 4, false)
	scan := res.Exec.Node("n1")
	if scan == nil || scan.Runtime.FirstOutMS <= 0 {
		t.Fatalf("scan runtime = %+v, want positive first_out_ms", scan)
	}
	join := res.Exec.Node("n4")
	if join == nil || join.Runtime.FirstOutMS <= 0 {
		t.Fatalf("join runtime = %+v, want positive first_out_ms", join)
	}
	if scan.Runtime.FirstOutMS > res.Exec.WallMS {
		t.Errorf("first_out_ms %v beyond wall %v", scan.Runtime.FirstOutMS, res.Exec.WallMS)
	}
}

// A plan failure during streaming surfaces the same partial-result
// contract as Run: the Result carries trace and error annotations.
func TestRunStreamPartialOnFailure(t *testing.T) {
	ex, _ := executorFixture(t)
	ex.EC = docset.NewContext(docset.WithLLM(brokenLLM{err: errSentinel}),
		docset.WithParallelism(1), docset.WithRetries(0))
	plan := &LogicalPlan{
		Nodes: []PlanNode{
			{ID: "n1", LogicalOp: LogicalOp{Op: OpQueryDatabase}},
			{ID: "n2", Inputs: []string{"n1"}, LogicalOp: LogicalOp{
				Op: OpLLMFilter, Question: "Does the document indicate damage?"}},
		},
		Output: "n2",
	}
	res, err := ex.RunStream(context.Background(), plan, StreamHooks{})
	if err == nil {
		t.Fatal("want execution error from permanent LLM failure")
	}
	if res == nil || res.Trace == nil {
		t.Fatal("partial result missing on streaming failure")
	}
}
