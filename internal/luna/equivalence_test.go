package luna

// Equivalence suite for the cost-based optimizer: every representative
// plan below executes twice against identically-seeded fresh systems —
// once with Optimize off, once with it on (predicate hoisting, filter
// reordering, proxy-cascade insertion) — and the results must be
// byte-identical while the optimized run spends no more LLM calls. This
// is the semantics-preservation contract that makes the optimizer safe
// to turn on.

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"aryn/internal/cost"
	"aryn/internal/docmodel"
	"aryn/internal/docset"
	"aryn/internal/index"
	"aryn/internal/llm"
)

// Single-concept predicate questions: the sim's filter matcher resolves
// these deterministically (one concept group → lexical presence decides),
// so commutation and cascade checks are exact, not probabilistic.
const (
	qFire  = "Does the report mention a fire?"
	qBirds = "Does the report mention birds?"
	qFuel  = "Does the report mention fuel?"
	qIce   = "Does the report mention ice?"
	qPilot = "Does the report mention a pilot?"
)

// equivCorpus indexes 16 documents with controlled topic vocabulary:
// fire in 4, birds in 3, fuel in 6, ice in 3, pilot in 13. Texts avoid
// the sim lexicon's synonym sets for topics they should not match.
func equivCorpus(t *testing.T) *index.Store {
	t.Helper()
	store := index.NewStore()
	docs := []struct {
		id, state, damage string
		engines           int
		text              string
	}{
		{"A01", "KY", "Substantial", 1, "The pilot reported a fire in the engine compartment. Fuel was leaking from the line."},
		{"A02", "KY", "Destroyed", 2, "A fire erupted after the hard landing. The pilot escaped without harm."},
		{"A03", "KY", "Substantial", 1, "The pilot saw birds near the runway. Several birds struck the windshield."},
		{"A04", "KY", "Minor", 1, "Fuel pressure dropped during cruise. The pilot diverted to a nearby field."},
		{"A05", "CA", "Substantial", 2, "Ice accumulated on the wings during descent. The pilot lost airspeed."},
		{"A06", "CA", "Destroyed", 1, "The airplane ran out of fuel short of the airport. The pilot made a forced approach."},
		{"A07", "CA", "Substantial", 1, "Birds were reported over the threshold. The pilot executed a go-around."},
		{"A08", "CA", "Minor", 2, "A small fire started in the cabin heater. Fuel fumes were noted by the pilot."},
		{"A09", "TX", "Substantial", 1, "The pilot encountered ice at altitude. Fuel flow remained normal."},
		{"A10", "TX", "Destroyed", 1, "The airplane struck a deer on the runway. The pilot was uninjured."},
		{"A11", "TX", "Substantial", 2, "Fuel contamination was found in the left tank. The pilot had sampled it before departure."},
		{"A12", "TX", "Minor", 1, "The canopy latch released in flight. The airplane landed without further event."},
		{"A13", "FL", "Substantial", 1, "Birds gathered on the taxiway. The airplane aborted its takeoff roll."},
		{"A14", "FL", "Destroyed", 2, "A fire consumed the airframe after impact. Witnesses called for help."},
		{"A15", "FL", "Substantial", 2, "Ice formed inside the carburetor. The pilot applied heat too late."},
		{"A16", "FL", "Minor", 1, "The tow bar was left attached. The pilot stopped the taxi immediately."},
	}
	for _, d := range docs {
		doc := docmodel.New(d.id)
		doc.SetProperty("accidentNumber", d.id)
		doc.SetProperty("us_state", d.state)
		doc.SetProperty("aircraftDamage", d.damage)
		doc.SetProperty("engines", d.engines)
		doc.Text = d.text
		if err := store.PutDocument(doc); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

// newEquivService wires a fresh, identically-seeded system. Fresh per run
// so the optimized and unoptimized executions cannot share an LLM cache —
// call counts stay honest.
func newEquivService(t *testing.T, optimize bool, model *cost.Model) *Service {
	t.Helper()
	store := equivCorpus(t)
	ec := docset.NewContext(docset.WithLLM(llm.NewSim(1)))
	return &Service{
		Planner:  NewPlanner(llm.NewSim(1), InferSchema(store)),
		Executor: &Executor{EC: ec, Store: store},
		Cost:     model,
		Optimize: optimize,
		Cascade:  DefaultCascade(),
	}
}

func chain(ops ...LogicalOp) *LogicalPlan { return &LogicalPlan{Ops: ops} }

// equivalencePlans is the representative DAG mix: filter chains of every
// depth the optimizer reorders, hoistable deterministic predicates,
// extract/group/fraction/project consumers, joins, and a diamond.
func equivalencePlans() []struct {
	name string
	plan *LogicalPlan
} {
	return []struct {
		name string
		plan *LogicalPlan
	}{
		{"count-after-fire", chain(
			LogicalOp{Op: OpQueryDatabase},
			LogicalOp{Op: OpLLMFilter, Question: qFire},
			LogicalOp{Op: OpCount})},
		{"state-scan-fuel", chain(
			LogicalOp{Op: OpQueryDatabase, Filters: []FilterSpec{{Field: "us_state", Kind: "term", Value: "KY"}}},
			LogicalOp{Op: OpLLMFilter, Question: qFuel},
			LogicalOp{Op: OpCount})},
		{"two-filter-chain", chain(
			LogicalOp{Op: OpQueryDatabase},
			LogicalOp{Op: OpLLMFilter, Question: qPilot},
			LogicalOp{Op: OpLLMFilter, Question: qFire},
			LogicalOp{Op: OpCount})},
		{"three-filter-chain", chain(
			LogicalOp{Op: OpQueryDatabase},
			LogicalOp{Op: OpLLMFilter, Question: qPilot},
			LogicalOp{Op: OpLLMFilter, Question: qFuel},
			LogicalOp{Op: OpLLMFilter, Question: qIce},
			LogicalOp{Op: OpCount})},
		{"hoist-basic-filter", chain(
			LogicalOp{Op: OpQueryDatabase},
			LogicalOp{Op: OpLLMFilter, Question: qFuel},
			LogicalOp{Op: OpBasicFilter, Filters: []FilterSpec{{Field: "engines", Kind: "term", Value: 1}}},
			LogicalOp{Op: OpCount})},
		{"hoist-past-extract", chain(
			LogicalOp{Op: OpQueryDatabase},
			LogicalOp{Op: OpLLMExtract, Fields: []llm.FieldSpec{{Name: "damaged_part", Type: "string"}}},
			LogicalOp{Op: OpBasicFilter, Filters: []FilterSpec{{Field: "us_state", Kind: "term", Value: "TX"}}},
			LogicalOp{Op: OpCount})},
		{"filter-then-group", chain(
			LogicalOp{Op: OpQueryDatabase},
			LogicalOp{Op: OpLLMFilter, Question: qPilot},
			LogicalOp{Op: OpGroupByAggregate, Key: "us_state", Agg: "count"})},
		{"fraction-of-filtered", chain(
			LogicalOp{Op: OpQueryDatabase},
			LogicalOp{Op: OpLLMFilter, Question: qPilot},
			LogicalOp{Op: OpFraction, Question: qFire})},
		{"project-birds", chain(
			LogicalOp{Op: OpQueryDatabase},
			LogicalOp{Op: OpLLMFilter, Question: qBirds},
			LogicalOp{Op: OpProject, ProjectFields: []string{"us_state"}})},
		{"distinct-states", chain(
			LogicalOp{Op: OpQueryDatabase},
			LogicalOp{Op: OpLLMFilter, Question: qFuel},
			LogicalOp{Op: opDistinct, Field: "us_state"},
			LogicalOp{Op: OpProject, ProjectFields: []string{"us_state"}})},
		{"limit-after-filter", chain(
			LogicalOp{Op: OpQueryDatabase},
			LogicalOp{Op: OpLLMFilter, Question: qFuel},
			LogicalOp{Op: OpLimit, K: 3},
			LogicalOp{Op: OpProject, ProjectFields: []string{"accidentNumber"}})},
		{"generate-fires", chain(
			LogicalOp{Op: OpQueryDatabase},
			LogicalOp{Op: OpLLMFilter, Question: qFire},
			LogicalOp{Op: OpLLMGenerate, Instruction: "summarize the fire reports"})},
		{"topk-grouped", chain(
			LogicalOp{Op: OpQueryDatabase},
			LogicalOp{Op: OpLLMFilter, Question: qPilot},
			LogicalOp{Op: OpGroupByAggregate, Key: "us_state", Agg: "count"},
			LogicalOp{Op: OpTopK, Field: "value", K: 2})},
		{"join-then-filter", &LogicalPlan{
			Nodes: []PlanNode{
				{ID: "n1", LogicalOp: LogicalOp{Op: OpQueryDatabase,
					Filters: []FilterSpec{{Field: "us_state", Kind: "term", Value: "KY"}}}},
				{ID: "n2", LogicalOp: LogicalOp{Op: OpQueryDatabase,
					Filters: []FilterSpec{{Field: "aircraftDamage", Kind: "term", Value: "Substantial"}}}},
				{ID: "n3", Inputs: []string{"n1", "n2"}, LogicalOp: LogicalOp{Op: OpJoin,
					LeftKey: "accidentNumber", RightKey: "accidentNumber", JoinKind: "inner", Prefix: "right"}},
				{ID: "n4", Inputs: []string{"n3"}, LogicalOp: LogicalOp{Op: OpLLMFilter, Question: qFuel}},
				{ID: "n5", Inputs: []string{"n4"}, LogicalOp: LogicalOp{Op: OpCount}},
			},
			Output: "n5",
		}},
		{"diamond-join", &LogicalPlan{
			Nodes: []PlanNode{
				{ID: "n1", LogicalOp: LogicalOp{Op: OpQueryDatabase,
					Filters: []FilterSpec{{Field: "engines", Kind: "term", Value: 1}}}},
				{ID: "n2", Inputs: []string{"n1"}, LogicalOp: LogicalOp{Op: OpLLMFilter, Question: qPilot}},
				{ID: "n3", LogicalOp: LogicalOp{Op: OpQueryDatabase,
					Filters: []FilterSpec{{Field: "aircraftDamage", Kind: "term", Value: "Substantial"}}}},
				{ID: "n4", Inputs: []string{"n3"}, LogicalOp: LogicalOp{Op: OpLLMFilter, Question: qIce}},
				{ID: "n5", Inputs: []string{"n2", "n4"}, LogicalOp: LogicalOp{Op: OpJoin,
					LeftKey: "accidentNumber", RightKey: "accidentNumber", JoinKind: "inner", Prefix: "right"}},
				{ID: "n6", Inputs: []string{"n5"}, LogicalOp: LogicalOp{Op: OpCount}},
			},
			Output: "n6",
		}},
	}
}

// runEquiv executes a plan on a fresh system with the optimize phase set
// as given and returns the result plus its total LLM call count.
func runEquiv(t *testing.T, plan *LogicalPlan, optimize bool) (*Result, int64) {
	t.Helper()
	svc := newEquivService(t, optimize, cost.NewModel(cost.NewStore()))
	res, err := svc.RunPlan(context.Background(), "equiv", plan.Clone())
	if err != nil {
		t.Fatalf("optimize=%v: %v", optimize, err)
	}
	return res, sumLLMCalls(res.Exec)
}

func sumLLMCalls(d *ExecDetail) int64 {
	if d == nil {
		return 0
	}
	var n int64
	for _, ne := range d.Nodes {
		n += ne.Runtime.LLMCalls
	}
	return n
}

func docIDs(res *Result) []string {
	ids := make([]string, 0, len(res.Docs))
	for _, d := range res.Docs {
		ids = append(ids, d.ID)
	}
	return ids
}

func TestOptimizerEquivalence(t *testing.T) {
	var totalOff, totalOn int64
	for _, tc := range equivalencePlans() {
		t.Run(tc.name, func(t *testing.T) {
			off, callsOff := runEquiv(t, tc.plan, false)
			on, callsOn := runEquiv(t, tc.plan, true)

			offJSON, err := json.Marshal(off.Answer)
			if err != nil {
				t.Fatal(err)
			}
			onJSON, err := json.Marshal(on.Answer)
			if err != nil {
				t.Fatal(err)
			}
			if string(offJSON) != string(onJSON) {
				t.Errorf("answers diverge:\n  off: %s\n  on:  %s", offJSON, onJSON)
			}
			if !reflect.DeepEqual(docIDs(off), docIDs(on)) {
				t.Errorf("result docs diverge:\n  off: %v\n  on:  %v", docIDs(off), docIDs(on))
			}
			if callsOn > callsOff {
				t.Errorf("optimized run spent MORE LLM calls: %d > %d", callsOn, callsOff)
			}
			if off.Optimized != nil {
				t.Error("unoptimized result must not carry an optimized plan")
			}
			if on.Optimized == nil {
				t.Error("optimized result must carry the optimized plan")
			}
			totalOff += callsOff
			totalOn += callsOn
		})
	}
	// Across the whole mix the optimizer must actually save something —
	// equal counts everywhere would mean the phase is a no-op.
	if totalOn >= totalOff {
		t.Errorf("no aggregate savings: optimized %d calls vs %d unoptimized", totalOn, totalOff)
	}
	t.Logf("LLM calls across mix: %d unoptimized, %d optimized", totalOff, totalOn)
}

// TestOptimizedResultAnnotations pins the observability contract: with the
// phase on, the result carries the optimized plan, both cost estimates,
// and an exec trace whose cascade node accounts for every input document.
func TestOptimizedResultAnnotations(t *testing.T) {
	plan := chain(
		LogicalOp{Op: OpQueryDatabase},
		LogicalOp{Op: OpLLMFilter, Question: qFire},
		LogicalOp{Op: OpCount})
	svc := newEquivService(t, true, cost.NewModel(cost.NewStore()))
	res, err := svc.RunPlan(context.Background(), "annotated", plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimized == nil || res.Cost == nil || res.CostOptimized == nil {
		t.Fatalf("missing annotations: optimized=%v cost=%v costOptimized=%v",
			res.Optimized != nil, res.Cost != nil, res.CostOptimized != nil)
	}
	if res.ExecutedPlan() != res.Optimized {
		t.Error("ExecutedPlan must be the optimized plan when the phase ran")
	}
	var cascade *NodeExec
	for i, ne := range res.Exec.Nodes {
		if ne.Op == OpLLMFilterCascade {
			cascade = &res.Exec.Nodes[i]
		}
	}
	if cascade == nil {
		t.Fatalf("no cascade node in exec detail: %+v", res.Exec.Nodes)
	}
	r := cascade.Runtime
	if r.Escalations+r.ProxyKept+r.ProxyDropped != r.DocsIn {
		t.Errorf("cascade accounting: escalated %d + kept %d + dropped %d != in %d",
			r.Escalations, r.ProxyKept, r.ProxyDropped, r.DocsIn)
	}
	if r.LLMCalls > r.Escalations {
		t.Errorf("cascade spent %d calls on %d escalations", r.LLMCalls, r.Escalations)
	}
	// The estimates must cover the LLM-bearing node and mark totals.
	if res.Cost.LLMCalls <= 0 || res.Cost.Units <= 0 {
		t.Errorf("rewritten-plan estimate empty: %+v", res.Cost)
	}
}

// TestFeedbackReordersChain closes the loop: executing a badly-ordered
// filter chain (broad predicate first) feeds observed selectivities into
// the store, after which the optimizer reorders the chain to put the
// selective predicate first. This is the acceptance criterion's
// "repeated-query run changes the plan's operator order".
func TestFeedbackReordersChain(t *testing.T) {
	model := cost.NewModel(cost.NewStore())
	plan := chain(
		LogicalOp{Op: OpQueryDatabase},
		LogicalOp{Op: OpLLMFilter, Question: qPilot}, // ~13/16 pass
		LogicalOp{Op: OpLLMFilter, Question: qFire},  // ~3/13 pass
		LogicalOp{Op: OpCount})

	// Cold store: default selectivities tie, the stable sort keeps the
	// author's order.
	cold := (&Optimizer{Model: model}).Optimize(plan.Clone())
	if got := filterQuestions(cold); got[0] != qPilot || got[1] != qFire {
		t.Fatalf("cold optimizer must preserve order, got %v", got)
	}

	// Execute with optimization OFF — observations are recorded anyway
	// (the warm-start contract).
	svc := newEquivService(t, false, model)
	if _, err := svc.RunPlan(context.Background(), "warmup", plan.Clone()); err != nil {
		t.Fatal(err)
	}
	if model.Store.Len() == 0 {
		t.Fatal("execution recorded no observations")
	}

	warm := (&Optimizer{Model: model}).Optimize(plan.Clone())
	if got := filterQuestions(warm); got[0] != qFire || got[1] != qPilot {
		t.Errorf("warm optimizer should hoist the selective filter, got %v", got)
	}

	// And the reordered plan still answers identically.
	res0, _ := runEquiv(t, plan, false)
	svcWarm := newEquivService(t, true, model)
	res1, err := svcWarm.RunPlan(context.Background(), "equiv", plan.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res0.Answer.String() != res1.Answer.String() {
		t.Errorf("reordered plan diverged: %q vs %q", res0.Answer.String(), res1.Answer.String())
	}
}

// filterQuestions lists the questions of LLM-predicate nodes (plain or
// cascade) in topological order.
func filterQuestions(p *LogicalPlan) []string {
	var out []string
	order, err := p.topoOrder()
	if err != nil {
		return nil
	}
	for _, idx := range order {
		n := p.Nodes[idx]
		if n.Op == OpLLMFilter || n.Op == OpLLMFilterCascade {
			out = append(out, n.Question)
		}
	}
	return out
}

// TestObservationsSkipErroredRuns guards the feedback store against
// poisoning: a cancelled execution must record nothing.
func TestObservationsSkipErroredRuns(t *testing.T) {
	model := cost.NewModel(cost.NewStore())
	svc := newEquivService(t, false, model)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	plan := chain(
		LogicalOp{Op: OpQueryDatabase},
		LogicalOp{Op: OpLLMFilter, Question: qFire},
		LogicalOp{Op: OpCount})
	if _, err := svc.RunPlan(ctx, "cancelled", plan); err == nil {
		t.Skip("cancelled run unexpectedly succeeded")
	}
	if n := model.Store.Len(); n != 0 {
		t.Errorf("errored run recorded %d signatures", n)
	}
}
