package luna

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"aryn/internal/docmodel"
	"aryn/internal/docset"
	"aryn/internal/index"
	"aryn/internal/llm"
)

// diamondPlan fans the scan out to two filter branches and joins them
// back — the canonical shape whose branches the scheduler overlaps.
func diamondPlan() *LogicalPlan {
	return &LogicalPlan{
		Nodes: []PlanNode{
			{ID: "n1", LogicalOp: LogicalOp{Op: OpQueryDatabase}},
			{ID: "n2", Inputs: []string{"n1"}, LogicalOp: LogicalOp{
				Op: OpLLMFilter, Question: "Does the document indicate substantial damage?"}},
			{ID: "n3", Inputs: []string{"n1"}, LogicalOp: LogicalOp{
				Op: OpBasicFilter, Filters: []FilterSpec{{Field: "engines", Kind: "gte", Value: 1}}}},
			{ID: "n4", Inputs: []string{"n2", "n3"}, LogicalOp: LogicalOp{
				Op: OpJoin, LeftKey: "accidentNumber", RightKey: "accidentNumber", Prefix: "r"}},
		},
		Output: "n4",
	}
}

// runDiamond executes the diamond at the given parallelism and returns
// the result plus a byte-stable rendering of its output.
func runDiamond(t *testing.T, parallelism int, serial bool) (*Result, string) {
	t.Helper()
	ex, _ := executorFixture(t)
	ex.EC = docset.NewContext(docset.WithLLM(llm.NewSim(1)), docset.WithParallelism(parallelism))
	ex.Serial = serial
	res, err := ex.Run(context.Background(), diamondPlan())
	if err != nil {
		t.Fatal(err)
	}
	docs, _ := json.Marshal(res.Docs)
	return res, res.Answer.String() + "\n" + string(docs)
}

// The determinism guarantee of the scheduler: a diamond executed with
// branch concurrency under budgets 1 and N — and with the scheduler
// forced serial — yields byte-identical output and a stable executed
// node set.
func TestDiamondDeterministicAcrossBudgetsAndScheduling(t *testing.T) {
	resOne, outOne := runDiamond(t, 1, false)
	resMany, outMany := runDiamond(t, 8, false)
	_, outSerial := runDiamond(t, 8, true)

	if outOne != outMany {
		t.Error("budget 1 vs 8 output differs")
	}
	if outMany != outSerial {
		t.Error("concurrent vs serial output differs")
	}

	nodeSet := func(d *ExecDetail) string {
		ids := make([]string, 0, len(d.Nodes))
		for _, n := range d.Nodes {
			ids = append(ids, n.ID)
		}
		return strings.Join(ids, ",")
	}
	if resOne.Exec == nil || resMany.Exec == nil {
		t.Fatal("ExecDetail missing")
	}
	if nodeSet(resOne.Exec) != nodeSet(resMany.Exec) {
		t.Errorf("executed node set unstable: %q vs %q", nodeSet(resOne.Exec), nodeSet(resMany.Exec))
	}
	// The shared scan, both branches, and the join all report runtime.
	for _, id := range []string{"n1", "n2", "n3", "n4"} {
		if resMany.Exec.Node(id) == nil {
			t.Errorf("node %s missing from executed set (%s)", id, nodeSet(resMany.Exec))
		}
	}
}

// ExecDetail must carry real per-node metrics: docs in/out, LLM calls on
// exactly the LLM nodes, budget, and branch count.
func TestExecDetailMetrics(t *testing.T) {
	res, _ := runDiamond(t, 4, false)
	d := res.Exec
	if d.Budget != 4 {
		t.Errorf("budget = %d, want 4", d.Budget)
	}
	// Branches: shared scan + join build + output pipeline.
	if d.Branches != 3 {
		t.Errorf("branches = %d, want 3", d.Branches)
	}
	scan := d.Node("n1")
	if scan == nil || scan.Runtime.DocsOut != 3 {
		t.Fatalf("scan runtime = %+v, want 3 docs out", scan)
	}
	lf := d.Node("n2")
	if lf == nil || lf.Runtime.LLMCalls != 3 {
		t.Fatalf("llmFilter runtime = %+v, want 3 LLM calls (one per doc)", lf)
	}
	if bf := d.Node("n3"); bf == nil || bf.Runtime.LLMCalls != 0 {
		t.Errorf("basicFilter should make no LLM calls: %+v", bf)
	}
	if d.WallMS <= 0 {
		t.Errorf("wall = %v, want > 0", d.WallMS)
	}
	// The trace's per-node counters sum to the same calls the detail
	// reports — each call attributed exactly once.
	var traceCalls int64
	for _, nt := range res.Trace.Nodes {
		traceCalls += nt.LLMCalls
	}
	var detailCalls int64
	for _, n := range d.Nodes {
		detailCalls += n.Runtime.LLMCalls
	}
	if traceCalls != detailCalls {
		t.Errorf("trace calls %d != detail calls %d", traceCalls, detailCalls)
	}
}

// The annotated-plan JSON carries a runtime object per physical node and
// the query-level exec summary.
func TestAnnotatedJSON(t *testing.T) {
	res, _ := runDiamond(t, 4, false)
	var parsed struct {
		Nodes []struct {
			ID      string       `json:"id"`
			Op      string       `json:"op"`
			Runtime *NodeRuntime `json:"runtime"`
		} `json:"nodes"`
		Output string `json:"output"`
		Exec   *struct {
			Budget   int `json:"budget"`
			Branches int `json:"branches"`
		} `json:"exec"`
	}
	if err := json.Unmarshal([]byte(res.Rewritten.AnnotatedJSON(res.Exec)), &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Output != "n4" || len(parsed.Nodes) != 4 {
		t.Fatalf("annotated plan shape: %+v", parsed)
	}
	for _, n := range parsed.Nodes {
		if n.Runtime == nil {
			t.Errorf("node %s missing runtime", n.ID)
		}
	}
	if parsed.Exec == nil || parsed.Exec.Budget != 4 || parsed.Exec.Branches != 3 {
		t.Errorf("exec summary = %+v", parsed.Exec)
	}
}

// rendezvousLLM blocks the first left-branch call and the first
// right-branch call until both are in flight: a deterministic proof that
// the scheduler executes independent plan branches concurrently. Under
// serial branch execution the calls could never be in flight together and
// the rendezvous times out with an error.
type rendezvousLLM struct {
	inner   llm.Client
	timeout time.Duration

	mu   sync.Mutex
	seen map[string]bool
	both chan struct{}
}

func newRendezvousLLM(inner llm.Client, timeout time.Duration) *rendezvousLLM {
	return &rendezvousLLM{inner: inner, timeout: timeout, seen: map[string]bool{}, both: make(chan struct{})}
}

func (r *rendezvousLLM) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	side := ""
	if strings.Contains(req.Prompt, "LEFTMARK") {
		side = "L"
	} else if strings.Contains(req.Prompt, "RIGHTMARK") {
		side = "R"
	}
	if side != "" {
		r.mu.Lock()
		r.seen[side] = true
		if r.seen["L"] && r.seen["R"] {
			select {
			case <-r.both:
			default:
				close(r.both)
			}
		}
		r.mu.Unlock()
		select {
		case <-r.both:
		case <-time.After(r.timeout):
			return llm.Response{}, fmt.Errorf("rendezvous: branches did not overlap within %s", r.timeout)
		}
	}
	return r.inner.Complete(ctx, req)
}

func (r *rendezvousLLM) Name() string { return r.inner.Name() }

// Both sides of a join execute concurrently: the left-branch llmFilter
// and the right-branch llmFilter must be in flight at the same moment,
// and the executed plan's busy windows must overlap.
func TestJoinBranchesOverlap(t *testing.T) {
	ex, _ := executorFixture(t)
	rv := newRendezvousLLM(llm.NewSim(1), 10*time.Second)
	ex.EC = docset.NewContext(docset.WithLLM(rv), docset.WithParallelism(4))

	plan := &LogicalPlan{
		Nodes: []PlanNode{
			{ID: "l1", LogicalOp: LogicalOp{Op: OpQueryDatabase,
				Filters: []FilterSpec{{Field: "us_state", Kind: "term", Value: "KY"}}}},
			{ID: "l2", Inputs: []string{"l1"}, LogicalOp: LogicalOp{
				Op: OpLLMFilter, Question: "LEFTMARK does the document indicate damage?"}},
			{ID: "r1", LogicalOp: LogicalOp{Op: OpQueryDatabase}},
			{ID: "r2", Inputs: []string{"r1"}, LogicalOp: LogicalOp{
				Op: OpLLMFilter, Question: "RIGHTMARK does the document indicate damage?"}},
			{ID: "j", Inputs: []string{"l2", "r2"}, LogicalOp: LogicalOp{
				Op: OpJoin, LeftKey: "accidentNumber", RightKey: "accidentNumber", Prefix: "r"}},
		},
		Output: "j",
	}
	res, err := ex.Run(context.Background(), plan)
	if err != nil {
		t.Fatalf("concurrent branches should rendezvous, got: %v", err)
	}
	l := res.Exec.Node("l2")
	r := res.Exec.Node("r2")
	if l == nil || r == nil {
		t.Fatal("branch nodes missing from ExecDetail")
	}
	// Wall-clock overlap of the two branches' busy windows.
	if l.Runtime.StartMS >= r.Runtime.EndMS || r.Runtime.StartMS >= l.Runtime.EndMS {
		t.Errorf("busy windows do not overlap: left [%v,%v] right [%v,%v]",
			l.Runtime.StartMS, l.Runtime.EndMS, r.Runtime.StartMS, r.Runtime.EndMS)
	}
}

// A shared subtree's LLM usage is attributed to its own node exactly once
// — not once per consuming branch — and the trace's per-node counters sum
// to the true metered upstream calls.
func TestSharedSubtreeLLMCountedOnce(t *testing.T) {
	store := index.NewStore()
	for i := 0; i < 4; i++ {
		d := docmodel.New(fmt.Sprintf("A%d", i))
		d.SetProperty("accidentNumber", fmt.Sprintf("A%d", i))
		d.SetProperty("engines", 1)
		d.Text = "substantial damage to the airframe"
		if err := store.PutDocument(d); err != nil {
			t.Fatal(err)
		}
	}
	meter := llm.NewMeter(llm.NewSim(1))
	ex := &Executor{
		EC:    docset.NewContext(docset.WithLLM(meter), docset.WithParallelism(4)),
		Store: store,
	}
	// The llmFilter lives in the shared prefix consumed by both join
	// sides: its 4 calls must appear once, not twice.
	plan := &LogicalPlan{
		Nodes: []PlanNode{
			{ID: "n1", LogicalOp: LogicalOp{Op: OpQueryDatabase}},
			{ID: "n2", Inputs: []string{"n1"}, LogicalOp: LogicalOp{
				Op: OpLLMFilter, Question: "Does the document indicate damage?"}},
			{ID: "n3", Inputs: []string{"n2"}, LogicalOp: LogicalOp{
				Op: OpBasicFilter, Filters: []FilterSpec{{Field: "engines", Kind: "gte", Value: 1}}}},
			{ID: "n4", Inputs: []string{"n2", "n3"}, LogicalOp: LogicalOp{
				Op: OpJoin, LeftKey: "accidentNumber", RightKey: "accidentNumber", Prefix: "self"}},
		},
		Output: "n4",
	}
	before := meter.Usage()
	res, err := ex.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	upstream := meter.Usage().Sub(before)

	lf := res.Exec.Node("n2")
	if lf == nil || lf.Runtime.LLMCalls != 4 {
		t.Fatalf("shared llmFilter calls = %+v, want exactly 4 (one per doc, one execution)", lf)
	}
	var traced int64
	for _, nt := range res.Trace.Nodes {
		traced += nt.LLMCalls
	}
	if traced != int64(upstream.Calls) {
		t.Errorf("trace attributes %d calls, meter saw %d — double or under count", traced, upstream.Calls)
	}
}
