package luna

import (
	"context"
	"fmt"

	"aryn/internal/llm"
)

// Planner turns natural-language questions into validated, optimized
// logical plans by prompting the LLM (§6.1 Query Planning).
type Planner struct {
	// Client is the planning model.
	Client llm.Client
	// Schema describes the queryable DocSet.
	Schema Schema
	// Rewrites configures plan optimization.
	Rewrites RewriteOptions
	// MaxRepairs bounds re-planning attempts after validation failures.
	MaxRepairs int
}

// NewPlanner builds a planner with default rewrites.
func NewPlanner(client llm.Client, schema Schema) *Planner {
	return &Planner{Client: client, Schema: schema, Rewrites: DefaultRewrites(), MaxRepairs: 1}
}

// Plan produces the raw and rewritten plans for a question. On validation
// failure it re-prompts once with the validator's feedback appended —
// the "check that it is semantically valid" loop of §6.1.
func (p *Planner) Plan(ctx context.Context, question string) (raw, rewritten *LogicalPlan, err error) {
	prompt := BuildPlanPrompt(p.Schema, question)
	for attempt := 0; ; attempt++ {
		resp, cerr := p.Client.Complete(ctx, llm.Request{Prompt: prompt})
		if cerr != nil {
			return nil, nil, fmt.Errorf("luna: planning call: %w", cerr)
		}
		plan, perr := ParsePlan(resp.Text)
		if perr == nil {
			perr = Validate(plan, p.Schema)
		}
		if perr == nil {
			return plan, Rewrite(plan, p.Rewrites), nil
		}
		if attempt >= p.MaxRepairs {
			return nil, nil, fmt.Errorf("luna: plan for %q failed validation: %w", question, perr)
		}
		prompt += fmt.Sprintf("\nYour previous plan was invalid (%v). Emit a corrected JSON plan.\n", perr)
	}
}

// Service bundles planning and execution into the end-to-end query API.
type Service struct {
	Planner  *Planner
	Executor *Executor
}

// Ask plans, validates, optimizes, compiles, and executes the question.
func (s *Service) Ask(ctx context.Context, question string) (*Result, error) {
	before, hasStats := llm.StatsOf(s.Planner.Client)
	raw, rewritten, err := s.Planner.Plan(ctx, question)
	if err != nil {
		return nil, err
	}
	res, err := s.Executor.Run(ctx, rewritten)
	if res != nil {
		// Fill in the query facts even on a partial result so degraded-mode
		// callers can still show the plan and per-node error annotations.
		res.Question = question
		res.Plan = raw
		res.Rewritten = rewritten
		if hasStats {
			// Planner and executor share one middleware stack in a wired
			// system, so a single delta covers the whole query.
			if after, ok := llm.StatsOf(s.Planner.Client); ok {
				delta := after.Sub(before)
				res.LLM = &delta
			}
		}
	}
	return res, err
}

// RunPlan executes a user-edited plan directly (the §6.2 "modify any part
// of the plan" path), bypassing the planner but not validation or the
// rule-based rewrites — submitted plans run through the same
// semantics-preserving optimizations the planner path applies, so the
// pipeline InspectPlan previews is the pipeline that executes.
func (s *Service) RunPlan(ctx context.Context, question string, plan *LogicalPlan) (*Result, error) {
	if err := Validate(plan, s.Planner.Schema); err != nil {
		return nil, err
	}
	res, err := s.Executor.Run(ctx, Rewrite(plan, s.Planner.Rewrites))
	if res != nil {
		res.Question = question
		res.Plan = plan
	}
	return res, err
}

// AskStream plans the question, then executes it with streaming hooks:
// partial result batches and live per-operator traces flow to the hooks
// while the query runs (see Executor.RunStream). The returned Result is
// identical to Ask's for the same plan.
func (s *Service) AskStream(ctx context.Context, question string, hooks StreamHooks) (*Result, error) {
	before, hasStats := llm.StatsOf(s.Planner.Client)
	raw, rewritten, err := s.Planner.Plan(ctx, question)
	if err != nil {
		return nil, err
	}
	res, err := s.Executor.RunStream(ctx, rewritten, hooks)
	if res != nil {
		res.Question = question
		res.Plan = raw
		res.Rewritten = rewritten
		if hasStats {
			if after, ok := llm.StatsOf(s.Planner.Client); ok {
				delta := after.Sub(before)
				res.LLM = &delta
			}
		}
	}
	return res, err
}

// RunPlanStream executes a user-submitted plan with streaming hooks,
// applying the same validation and rewrites as RunPlan.
func (s *Service) RunPlanStream(ctx context.Context, question string, plan *LogicalPlan, hooks StreamHooks) (*Result, error) {
	if err := Validate(plan, s.Planner.Schema); err != nil {
		return nil, err
	}
	res, err := s.Executor.RunStream(ctx, Rewrite(plan, s.Planner.Rewrites), hooks)
	if res != nil {
		res.Question = question
		res.Plan = plan
	}
	return res, err
}

// PlanPreview is a planned-but-not-executed query: the inspectable half
// of the §6.2 inspect→edit→re-run loop.
type PlanPreview struct {
	Question string
	// Plan is the plan as emitted by the planner (or submitted by the
	// user), before optimization.
	Plan *LogicalPlan
	// Rewritten is the plan after rule-based optimization.
	Rewritten *LogicalPlan
	// Compiled is the physical Sycamore pipeline the rewritten plan
	// lowers to.
	Compiled string
}

// PlanOnly plans, validates, rewrites, and compiles the question without
// executing anything — the cheap POST /plan path.
func (s *Service) PlanOnly(ctx context.Context, question string) (*PlanPreview, error) {
	raw, rewritten, err := s.Planner.Plan(ctx, question)
	if err != nil {
		return nil, err
	}
	compiled, err := s.Executor.Compile(rewritten)
	if err != nil {
		return nil, err
	}
	return &PlanPreview{Question: question, Plan: raw, Rewritten: rewritten, Compiled: compiled}, nil
}

// InspectPlan validates, rewrites, and compiles a user-submitted plan
// without executing it — a dry run for edited plans, surfacing every
// validation problem at once.
func (s *Service) InspectPlan(plan *LogicalPlan) (*PlanPreview, error) {
	if err := Validate(plan, s.Planner.Schema); err != nil {
		return nil, err
	}
	rewritten := Rewrite(plan, s.Planner.Rewrites)
	compiled, err := s.Executor.Compile(rewritten)
	if err != nil {
		return nil, err
	}
	return &PlanPreview{Plan: plan, Rewritten: rewritten, Compiled: compiled}, nil
}
