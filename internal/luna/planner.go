package luna

import (
	"context"
	"fmt"

	"aryn/internal/llm"
)

// Planner turns natural-language questions into validated, optimized
// logical plans by prompting the LLM (§6.1 Query Planning).
type Planner struct {
	// Client is the planning model.
	Client llm.Client
	// Schema describes the queryable DocSet.
	Schema Schema
	// Rewrites configures plan optimization.
	Rewrites RewriteOptions
	// MaxRepairs bounds re-planning attempts after validation failures.
	MaxRepairs int
}

// NewPlanner builds a planner with default rewrites.
func NewPlanner(client llm.Client, schema Schema) *Planner {
	return &Planner{Client: client, Schema: schema, Rewrites: DefaultRewrites(), MaxRepairs: 1}
}

// Plan produces the raw and rewritten plans for a question. On validation
// failure it re-prompts once with the validator's feedback appended —
// the "check that it is semantically valid" loop of §6.1.
func (p *Planner) Plan(ctx context.Context, question string) (raw, rewritten *LogicalPlan, err error) {
	prompt := BuildPlanPrompt(p.Schema, question)
	for attempt := 0; ; attempt++ {
		resp, cerr := p.Client.Complete(ctx, llm.Request{Prompt: prompt})
		if cerr != nil {
			return nil, nil, fmt.Errorf("luna: planning call: %w", cerr)
		}
		plan, perr := ParsePlan(resp.Text)
		if perr == nil {
			perr = Validate(plan, p.Schema)
		}
		if perr == nil {
			return plan, Rewrite(plan, p.Rewrites), nil
		}
		if attempt >= p.MaxRepairs {
			return nil, nil, fmt.Errorf("luna: plan for %q failed validation: %w", question, perr)
		}
		prompt += fmt.Sprintf("\nYour previous plan was invalid (%v). Emit a corrected JSON plan.\n", perr)
	}
}

// Service bundles planning and execution into the end-to-end query API.
type Service struct {
	Planner  *Planner
	Executor *Executor
}

// Ask plans, validates, optimizes, compiles, and executes the question.
func (s *Service) Ask(ctx context.Context, question string) (*Result, error) {
	before, hasStats := llm.StatsOf(s.Planner.Client)
	raw, rewritten, err := s.Planner.Plan(ctx, question)
	if err != nil {
		return nil, err
	}
	res, err := s.Executor.Run(ctx, rewritten)
	if err != nil {
		return nil, err
	}
	res.Question = question
	res.Plan = raw
	res.Rewritten = rewritten
	if hasStats {
		// Planner and executor share one middleware stack in a wired
		// system, so a single delta covers the whole query.
		if after, ok := llm.StatsOf(s.Planner.Client); ok {
			delta := after.Sub(before)
			res.LLM = &delta
		}
	}
	return res, nil
}

// RunPlan executes a user-edited plan directly (the §6.2 "modify any part
// of the plan" path), bypassing the planner but not validation.
func (s *Service) RunPlan(ctx context.Context, question string, plan *LogicalPlan) (*Result, error) {
	if err := Validate(plan, s.Planner.Schema); err != nil {
		return nil, err
	}
	res, err := s.Executor.Run(ctx, plan)
	if err != nil {
		return nil, err
	}
	res.Question = question
	res.Plan = plan
	return res, nil
}
