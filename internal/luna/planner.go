package luna

import (
	"context"
	"fmt"

	"aryn/internal/cost"
	"aryn/internal/llm"
)

// Planner turns natural-language questions into validated, optimized
// logical plans by prompting the LLM (§6.1 Query Planning).
type Planner struct {
	// Client is the planning model.
	Client llm.Client
	// Schema describes the queryable DocSet.
	Schema Schema
	// Rewrites configures plan optimization.
	Rewrites RewriteOptions
	// MaxRepairs bounds re-planning attempts after validation failures.
	MaxRepairs int
}

// NewPlanner builds a planner with default rewrites.
func NewPlanner(client llm.Client, schema Schema) *Planner {
	return &Planner{Client: client, Schema: schema, Rewrites: DefaultRewrites(), MaxRepairs: 1}
}

// Plan produces the raw and rewritten plans for a question. On validation
// failure it re-prompts once with the validator's feedback appended —
// the "check that it is semantically valid" loop of §6.1.
func (p *Planner) Plan(ctx context.Context, question string) (raw, rewritten *LogicalPlan, err error) {
	prompt := BuildPlanPrompt(p.Schema, question)
	for attempt := 0; ; attempt++ {
		resp, cerr := p.Client.Complete(ctx, llm.Request{Prompt: prompt})
		if cerr != nil {
			return nil, nil, fmt.Errorf("luna: planning call: %w", cerr)
		}
		plan, perr := ParsePlan(resp.Text)
		if perr == nil {
			perr = Validate(plan, p.Schema)
		}
		if perr == nil {
			return plan, Rewrite(plan, p.Rewrites), nil
		}
		if attempt >= p.MaxRepairs {
			return nil, nil, fmt.Errorf("luna: plan for %q failed validation: %w", question, perr)
		}
		prompt += fmt.Sprintf("\nYour previous plan was invalid (%v). Emit a corrected JSON plan.\n", perr)
	}
}

// Service bundles planning and execution into the end-to-end query API.
type Service struct {
	Planner  *Planner
	Executor *Executor
	// Cost backs the optimize phase's estimates and receives per-operator
	// feedback observations after every executed query; nil disables both.
	Cost *cost.Model
	// Optimize enables the cost-based optimize phase after the rule-based
	// rewrites. Off, queries still feed the feedback store (when Cost is
	// set), so turning optimization on later starts warm.
	Optimize bool
	// Cascade configures proxy-cascade insertion when Optimize is on.
	Cascade CascadeOptions
}

// WithOptimize returns a copy of the service with the optimize phase
// toggled — the per-request override behind the API's "optimize" flag.
// The copy shares the planner, executor, and cost model.
func (s *Service) WithOptimize(enabled bool) *Service {
	c := *s
	c.Optimize = enabled
	return &c
}

// optimizePhase applies the cost-based optimizer to the rewritten plan.
// It returns the plan to execute plus the optimized plan (nil when the
// phase is off, so callers can tell "optimized" apart from "as
// rewritten").
func (s *Service) optimizePhase(rewritten *LogicalPlan) (toRun, optimized *LogicalPlan) {
	if !s.Optimize {
		return rewritten, nil
	}
	o := &Optimizer{Model: s.Cost, Cascade: s.Cascade}
	optimized = o.Optimize(rewritten)
	return optimized, optimized
}

// annotate fills a result's optimizer fields: the rewritten/optimized
// plan split and the cost model's estimates for both.
func (s *Service) annotate(res *Result, rewritten, optimized *LogicalPlan) {
	res.Rewritten = rewritten
	res.Optimized = optimized
	if s.Cost == nil {
		return
	}
	base := s.baseDocs()
	res.Cost = EstimatePlan(rewritten, s.Cost, base)
	if optimized != nil {
		res.CostOptimized = EstimatePlan(optimized, s.Cost, base)
	}
}

// observe records the executed plan's measured per-operator behaviour
// into the feedback store — the write half of the optimization loop.
// Partial (errored) executions are skipped: their truncated counts would
// poison selectivity evidence.
func (s *Service) observe(res *Result, err error) {
	if s.Cost == nil || err != nil || res == nil || res.Exec == nil {
		return
	}
	ObserveExec(res.ExecutedPlan(), res.Exec, s.Cost.Store)
}

// baseDocs is the corpus cardinality estimates start from.
func (s *Service) baseDocs() float64 {
	if s.Executor == nil || s.Executor.Store == nil {
		return 0
	}
	return float64(s.Executor.Store.NumDocs())
}

// Ask plans, validates, optimizes, compiles, and executes the question.
func (s *Service) Ask(ctx context.Context, question string) (*Result, error) {
	before, hasStats := llm.StatsOf(s.Planner.Client)
	raw, rewritten, err := s.Planner.Plan(ctx, question)
	if err != nil {
		return nil, err
	}
	toRun, optimized := s.optimizePhase(rewritten)
	res, err := s.Executor.Run(ctx, toRun)
	if res != nil {
		// Fill in the query facts even on a partial result so degraded-mode
		// callers can still show the plan and per-node error annotations.
		res.Question = question
		res.Plan = raw
		s.annotate(res, rewritten, optimized)
		if hasStats {
			// Planner and executor share one middleware stack in a wired
			// system, so a single delta covers the whole query.
			if after, ok := llm.StatsOf(s.Planner.Client); ok {
				delta := after.Sub(before)
				res.LLM = &delta
			}
		}
	}
	s.observe(res, err)
	return res, err
}

// RunPlan executes a user-edited plan directly (the §6.2 "modify any part
// of the plan" path), bypassing the planner but not validation or the
// rule-based rewrites — submitted plans run through the same
// semantics-preserving optimizations the planner path applies, so the
// pipeline InspectPlan previews is the pipeline that executes.
func (s *Service) RunPlan(ctx context.Context, question string, plan *LogicalPlan) (*Result, error) {
	if err := Validate(plan, s.Planner.Schema); err != nil {
		return nil, err
	}
	rewritten := Rewrite(plan, s.Planner.Rewrites)
	toRun, optimized := s.optimizePhase(rewritten)
	res, err := s.Executor.Run(ctx, toRun)
	if res != nil {
		res.Question = question
		res.Plan = plan
		s.annotate(res, rewritten, optimized)
	}
	s.observe(res, err)
	return res, err
}

// AskStream plans the question, then executes it with streaming hooks:
// partial result batches and live per-operator traces flow to the hooks
// while the query runs (see Executor.RunStream). The returned Result is
// identical to Ask's for the same plan.
func (s *Service) AskStream(ctx context.Context, question string, hooks StreamHooks) (*Result, error) {
	before, hasStats := llm.StatsOf(s.Planner.Client)
	raw, rewritten, err := s.Planner.Plan(ctx, question)
	if err != nil {
		return nil, err
	}
	toRun, optimized := s.optimizePhase(rewritten)
	res, err := s.Executor.RunStream(ctx, toRun, hooks)
	if res != nil {
		res.Question = question
		res.Plan = raw
		s.annotate(res, rewritten, optimized)
		if hasStats {
			if after, ok := llm.StatsOf(s.Planner.Client); ok {
				delta := after.Sub(before)
				res.LLM = &delta
			}
		}
	}
	s.observe(res, err)
	return res, err
}

// RunPlanStream executes a user-submitted plan with streaming hooks,
// applying the same validation and rewrites as RunPlan.
func (s *Service) RunPlanStream(ctx context.Context, question string, plan *LogicalPlan, hooks StreamHooks) (*Result, error) {
	if err := Validate(plan, s.Planner.Schema); err != nil {
		return nil, err
	}
	rewritten := Rewrite(plan, s.Planner.Rewrites)
	toRun, optimized := s.optimizePhase(rewritten)
	res, err := s.Executor.RunStream(ctx, toRun, hooks)
	if res != nil {
		res.Question = question
		res.Plan = plan
		s.annotate(res, rewritten, optimized)
	}
	s.observe(res, err)
	return res, err
}

// PlanPreview is a planned-but-not-executed query: the inspectable half
// of the §6.2 inspect→edit→re-run loop.
type PlanPreview struct {
	Question string
	// Plan is the plan as emitted by the planner (or submitted by the
	// user), before optimization.
	Plan *LogicalPlan
	// Rewritten is the plan after rule-based optimization.
	Rewritten *LogicalPlan
	// Optimized is the plan after the cost-based optimize phase (nil when
	// the phase is off).
	Optimized *LogicalPlan
	// Cost/CostOptimized are the model's estimates for the rewritten and
	// optimized plans (nil without a cost model) — the "estimated" half
	// of the estimated-vs-observed story; the observed half arrives with
	// execution (EXPLAIN ANALYZE).
	Cost          *cost.PlanEstimate
	CostOptimized *cost.PlanEstimate
	// Compiled is the physical Sycamore pipeline the plan that would
	// execute (optimized when the phase is on) lowers to.
	Compiled string
}

// preview assembles a PlanPreview for a rewritten plan: optimize phase,
// estimates, and the compiled rendering of the pipeline that would run.
func (s *Service) preview(question string, raw, rewritten *LogicalPlan) (*PlanPreview, error) {
	toRun, optimized := s.optimizePhase(rewritten)
	compiled, err := s.Executor.Compile(toRun)
	if err != nil {
		return nil, err
	}
	pv := &PlanPreview{Question: question, Plan: raw, Rewritten: rewritten, Optimized: optimized, Compiled: compiled}
	if s.Cost != nil {
		base := s.baseDocs()
		pv.Cost = EstimatePlan(rewritten, s.Cost, base)
		if optimized != nil {
			pv.CostOptimized = EstimatePlan(optimized, s.Cost, base)
		}
	}
	return pv, nil
}

// PlanOnly plans, validates, rewrites, and compiles the question without
// executing anything — the cheap POST /plan path.
func (s *Service) PlanOnly(ctx context.Context, question string) (*PlanPreview, error) {
	raw, rewritten, err := s.Planner.Plan(ctx, question)
	if err != nil {
		return nil, err
	}
	return s.preview(question, raw, rewritten)
}

// InspectPlan validates, rewrites, and compiles a user-submitted plan
// without executing it — a dry run for edited plans, surfacing every
// validation problem at once.
func (s *Service) InspectPlan(plan *LogicalPlan) (*PlanPreview, error) {
	if err := Validate(plan, s.Planner.Schema); err != nil {
		return nil, err
	}
	return s.preview("", plan, Rewrite(plan, s.Planner.Rewrites))
}
