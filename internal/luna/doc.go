// Package luna implements the paper's natural-language query service
// (§6): a planner that turns questions into DAGs of logical operators, a
// validator and rule-based rewriter, a compiler that lowers logical plans
// onto Sycamore DocSet pipelines, and an executor that schedules
// independent plan branches concurrently and reports per-node runtime
// (EXPLAIN ANALYZE) with full lineage traces.
//
// Paper counterpart: Luna, the query planning/execution service of §6.
//
// Concurrency: Service and Executor are stateless per query and safe for
// concurrent Ask/RunPlan calls. Each Run opens a query-scoped worker
// budget (docset.Context.QueryScope) and starts the plan's independent
// branches — join build sides, shared diamond prefixes — as concurrent
// docset.Tasks under it; output remains byte-identical to serial
// execution. Conversation serializes its turns behind an internal mutex
// so one session's follow-ups cannot interleave. LogicalPlan values are
// not synchronized: clone before sharing a plan across goroutines that
// edit it.
package luna
