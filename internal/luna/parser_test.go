package luna

import (
	"strings"
	"testing"
)

func testSchema() Schema {
	return Schema{Fields: []SchemaField{
		{Name: "accidentNumber", Type: "string"},
		{Name: "aircraft", Type: "string", Examples: []string{"Cessna 172S", "Piper PA-18"}},
		{Name: "aircraftCategory", Type: "string"},
		{Name: "aircraftDamage", Type: "string", Examples: []string{"Substantial"}},
		{Name: "conditionOfLight", Type: "string"},
		{Name: "conditions", Type: "string"},
		{Name: "engines", Type: "int"},
		{Name: "fatalities", Type: "int"},
		{Name: "flightConductedUnder", Type: "string"},
		{Name: "flightTime", Type: "int"},
		{Name: "month", Type: "string"},
		{Name: "pilotCertificate", Type: "string"},
		{Name: "registration", Type: "string"},
		{Name: "us_state", Type: "string"},
		{Name: "weather_related", Type: "bool"},
		{Name: "windSpeed", Type: "int"},
		{Name: "year", Type: "int"},
		{Name: "probable_cause", Type: "string"},
	}}
}

func parse(t *testing.T, q string) *LogicalPlan {
	t.Helper()
	p := &parser{schema: testSchema()}
	plan, err := p.Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	if err := Validate(plan, testSchema()); err != nil {
		t.Fatalf("plan for %q invalid: %v\n%s", q, err, plan.String())
	}
	return plan
}

func TestParseCountWithStateFilter(t *testing.T) {
	plan := parse(t, "How many incidents were there in Kentucky?")
	if plan.Ops[0].Op != OpQueryDatabase {
		t.Fatal("plan must root at queryDatabase")
	}
	found := false
	for _, f := range plan.Ops[0].Filters {
		if f.Field == "us_state" && f.Value == "KY" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing state filter: %s", plan.String())
	}
	if plan.Ops[len(plan.Ops)-1].Op != OpCount {
		t.Errorf("terminal should be count: %s", plan.String())
	}
}

func TestParseResidualBecomesLLMFilter(t *testing.T) {
	plan := parse(t, "How many incidents were due to engine problems?")
	hasFilter := false
	for _, op := range plan.Ops {
		if op.Op == OpLLMFilter && strings.Contains(op.Question, "engine problems") {
			hasFilter = true
		}
	}
	if !hasFilter {
		t.Errorf("engine problems should become llmFilter: %s", plan.String())
	}
}

func TestParseBreakdown(t *testing.T) {
	plan := parse(t, "How many incidents were there by state?")
	last := plan.Ops[len(plan.Ops)-1]
	if last.Op != OpGroupByAggregate || last.Key != "us_state" || last.Agg != "count" {
		t.Errorf("breakdown plan wrong: %s", plan.String())
	}
	plan2 := parse(t, "How many incidents occurred in each month?")
	last2 := plan2.Ops[len(plan2.Ops)-1]
	if last2.Key != "month" {
		t.Errorf("month breakdown: %s", plan2.String())
	}
}

func TestParseConsumedPhrasesDontBecomeBreakdowns(t *testing.T) {
	// "caused by weather" must map to the weather_related filter, not a
	// group-by on a "weather" field.
	plan := parse(t, "How many incidents were caused by weather?")
	for _, op := range plan.Ops {
		if op.Op == OpGroupByAggregate {
			t.Errorf("spurious breakdown: %s", plan.String())
		}
	}
	found := false
	for _, f := range plan.Ops[0].Filters {
		if f.Field == "weather_related" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing weather_related filter: %s", plan.String())
	}
}

func TestParseManufacturerMisinterpretation(t *testing.T) {
	// The paper's §7.2 interpretation error: "aircraft manufacturer" is not
	// a schema field, and schema linking lands on the lexically-closest
	// field rather than planning a query-time extraction.
	plan := parse(t, "What was the breakdown of incident causes by aircraft manufacturer?")
	var group *LogicalOp
	for i := range plan.Ops {
		if plan.Ops[i].Op == OpGroupByAggregate {
			group = &plan.Ops[i]
		}
	}
	if group == nil {
		t.Fatalf("no group op: %s", plan.String())
	}
	if group.Key == "manufacturer" {
		t.Error("schema has no manufacturer field; linking should have misfired")
	}
	if !strings.HasPrefix(group.Key, "aircraft") {
		t.Errorf("expected aircraft-ish mislink, got %q", group.Key)
	}
}

func TestParseModeWithQueryTimeExtraction(t *testing.T) {
	plan := parse(t, "In incidents involving Piper aircraft, what was the most commonly damaged part of the aircraft?")
	var hasExtract, hasContains bool
	for _, op := range plan.Ops {
		if op.Op == OpLLMExtract {
			for _, f := range op.Fields {
				if f.Name == "damaged_part" {
					hasExtract = true
				}
			}
		}
	}
	for _, f := range plan.Ops[0].Filters {
		if f.Field == "aircraft" && f.Kind == "contains" && f.Value == "Piper" {
			hasContains = true
		}
	}
	if !hasExtract || !hasContains {
		t.Errorf("piper mode plan: extract=%v contains=%v\n%s", hasExtract, hasContains, plan.String())
	}
	last := plan.Ops[len(plan.Ops)-1]
	if last.Op != OpTopK || last.K != 1 {
		t.Errorf("terminal: %s", plan.String())
	}
}

func TestParseTopThree(t *testing.T) {
	plan := parse(t, "What are the top three most commonly damaged parts in single-engine aircraft incidents?")
	last := plan.Ops[len(plan.Ops)-1]
	if last.Op != OpTopK || last.K != 3 {
		t.Errorf("topK k=3 expected: %s", plan.String())
	}
	engineFilter := false
	for _, f := range plan.Ops[0].Filters {
		if f.Field == "engines" && f.Value == 1 {
			engineFilter = true
		}
		if f.Field == "aircraft" {
			t.Errorf("spurious aircraft filter from 'single-engine aircraft': %s", plan.String())
		}
	}
	if !engineFilter {
		t.Errorf("missing engines=1 filter: %s", plan.String())
	}
}

func TestParseFraction(t *testing.T) {
	plan := parse(t, "What fraction of incidents that resulted in substantial damage were due to engine problems?")
	last := plan.Ops[len(plan.Ops)-1]
	if last.Op != OpFraction || !strings.Contains(last.Question, "engine") {
		t.Errorf("fraction terminal: %s", plan.String())
	}
	damage := false
	for _, f := range plan.Ops[0].Filters {
		if f.Field == "aircraftDamage" && f.Value == "Substantial" {
			damage = true
		}
	}
	if !damage {
		t.Errorf("base filter missing: %s", plan.String())
	}
}

func TestParseAggregates(t *testing.T) {
	plan := parse(t, "What was the average total flight time of pilots in fatal incidents?")
	var agg *LogicalOp
	for i := range plan.Ops {
		if plan.Ops[i].Op == OpGroupByAggregate {
			agg = &plan.Ops[i]
		}
	}
	if agg == nil || agg.Agg != "avg" || agg.ValueField != "flightTime" || agg.Key != "" {
		t.Fatalf("avg plan: %s", plan.String())
	}
	fatal := false
	for _, f := range plan.Ops[0].Filters {
		if f.Field == "fatalities" && f.Kind == "gte" {
			fatal = true
		}
	}
	if !fatal {
		t.Errorf("fatal filter missing: %s", plan.String())
	}

	plan2 := parse(t, "What was the maximum wind speed recorded, in knots?")
	var agg2 *LogicalOp
	for i := range plan2.Ops {
		if plan2.Ops[i].Op == OpGroupByAggregate {
			agg2 = &plan2.Ops[i]
		}
	}
	if agg2 == nil || agg2.Agg != "max" || agg2.ValueField != "windSpeed" {
		t.Fatalf("max plan: %s", plan2.String())
	}
}

func TestParseListProjection(t *testing.T) {
	plan := parse(t, "List the registration numbers of aircraft that were destroyed.")
	last := plan.Ops[len(plan.Ops)-1]
	if last.Op != OpProject || last.ProjectFields[0] != "registration" {
		t.Errorf("projection: %s", plan.String())
	}
	destroyed := false
	for _, f := range plan.Ops[0].Filters {
		if f.Field == "aircraftDamage" && f.Value == "Destroyed" {
			destroyed = true
		}
	}
	if !destroyed {
		t.Errorf("destroyed filter missing: %s", plan.String())
	}
}

func TestParseAccidentLookup(t *testing.T) {
	plan := parse(t, "What was the probable cause of accident CEN24LA100?")
	acc := false
	for _, f := range plan.Ops[0].Filters {
		if f.Field == "accidentNumber" && f.Value == "CEN24LA100" {
			acc = true
		}
	}
	if !acc {
		t.Errorf("accident filter missing: %s", plan.String())
	}
	last := plan.Ops[len(plan.Ops)-1]
	if last.Op != OpProject || last.ProjectFields[0] != "probable_cause" {
		t.Errorf("cause projection missing: %s", plan.String())
	}
}

func TestParseArgmax(t *testing.T) {
	plan := parse(t, "Which state had the most incidents?")
	ops := plan.Ops
	if ops[len(ops)-1].Op != OpTopK || ops[len(ops)-2].Op != OpGroupByAggregate || ops[len(ops)-2].Key != "us_state" {
		t.Errorf("argmax plan: %s", plan.String())
	}
}

func TestParseCategoryAndRegulation(t *testing.T) {
	plan := parse(t, "How many incidents involved helicopters?")
	if f := plan.Ops[0].Filters; len(f) != 1 || f[0].Field != "aircraftCategory" || f[0].Value != "Helicopter" {
		t.Errorf("helicopter filter: %s", plan.String())
	}
	plan2 := parse(t, "How many flights were conducted under Part 137?")
	if f := plan2.Ops[0].Filters; len(f) != 1 || f[0].Field != "flightConductedUnder" {
		t.Errorf("part filter: %s", plan2.String())
	}
}

func TestParseSummarizeAndDefault(t *testing.T) {
	plan := parse(t, "Summarize the common themes in incidents involving bird strikes.")
	last := plan.Ops[len(plan.Ops)-1]
	if last.Op != OpLLMGenerate {
		t.Errorf("summarize terminal: %s", plan.String())
	}
}

func TestResolveFieldTieBreaksBySchemaOrder(t *testing.T) {
	p := &parser{schema: testSchema()}
	// "aircraft manufacturer" overlaps aircraft, aircraftCategory, and
	// aircraftDamage equally on "aircraft"; first schema field wins.
	if got := p.resolveField("aircraft manufacturer"); got != "aircraft" {
		t.Errorf("resolveField = %q", got)
	}
	if got := p.resolveField("number of engines"); got != "engines" {
		t.Errorf("resolveField(engines) = %q", got)
	}
	if got := p.resolveField("zzz qqq"); got != "" {
		t.Errorf("unresolvable phrase should be empty, got %q", got)
	}
}

func TestParseSemanticSearch(t *testing.T) {
	plan := parse(t, "Find reports about carburetor icing during climb")
	if plan.Ops[0].Op != OpQueryVectorDatabase {
		t.Fatalf("semantic search should root at queryVectorDatabase: %s", plan.String())
	}
	if !strings.Contains(plan.Ops[0].Query, "carburetor icing") {
		t.Errorf("query text lost: %q", plan.Ops[0].Query)
	}
	if plan.Ops[1].Op != OpProject {
		t.Errorf("search should list matches: %s", plan.String())
	}
}
