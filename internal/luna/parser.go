package luna

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"aryn/internal/llm"
)

// parser is the grammar-based semantic parser that serves as the Sim
// model's query-planning skill: it decomposes a natural-language question
// into the logical-operator chain a GPT-4-class planner produces from the
// same prompt (§6.1). Like its LLM counterpart it links question phrases
// to schema fields by lexical affinity — which is exactly how the paper's
// "aircraft manufacturer" misinterpretation arises.
type parser struct {
	schema Schema
}

// monthNames for date filters.
var monthNames = []string{
	"january", "february", "march", "april", "may", "june",
	"july", "august", "september", "october", "november", "december",
}

var accidentNumberRe = regexp.MustCompile(`\b([A-Z]{3}\d{2}[A-Z]{2}\d{3}[A-B]?)\b`)

// Parse converts the question to a logical plan.
func (p *parser) Parse(question string) (*LogicalPlan, error) {
	q := strings.TrimSpace(question)
	q = strings.TrimSuffix(q, "?")
	q = strings.TrimSuffix(q, ".")

	st := &parseState{parser: p, original: question, text: " " + q + " "}
	st.extractAccidentNumber()
	st.lower()
	st.extractFilters()

	ops := st.buildOps()
	if len(ops) == 0 {
		return nil, fmt.Errorf("luna: could not interpret question %q", question)
	}
	// The grammar planner always produces a chain; Chain up-converts it
	// to the DAG IR (the planner LLM emits the DAG JSON form directly).
	return Chain(ops...), nil
}

// parseState tracks the question text as recognized phrases are consumed.
type parseState struct {
	parser   *parser
	original string
	text     string // mutable working copy, space-padded
	filters  []FilterSpec
	llmPreds []string // residual semantic predicates -> llmFilter
}

func (st *parseState) lower() { st.text = strings.ToLower(st.text) }

// consume removes the first occurrence of phrase from the working text.
func (st *parseState) consume(phrase string) bool {
	idx := strings.Index(st.text, phrase)
	if idx < 0 {
		return false
	}
	st.text = st.text[:idx] + " " + st.text[idx+len(phrase):]
	return true
}

func (st *parseState) has(phrase string) bool { return strings.Contains(st.text, phrase) }

func (st *parseState) addFilter(field, kind string, value any) {
	st.filters = append(st.filters, FilterSpec{Field: field, Kind: kind, Value: value})
}

// extractAccidentNumber runs before lower-casing (IDs are uppercase).
func (st *parseState) extractAccidentNumber() {
	if m := accidentNumberRe.FindStringSubmatch(st.text); m != nil {
		st.addFilter("accidentNumber", "term", m[1])
		st.consume(m[1])
	}
}

// extractFilters consumes every condition phrase it recognizes, mapping
// schema-resolvable conditions to property filters and leaving residual
// semantic predicates for llmFilter.
func (st *parseState) extractFilters() {
	// Manufacturer-style phrases: "manufactured by X", "involving X
	// aircraft", "X aircraft".
	for _, re := range []*regexp.Regexp{
		regexp.MustCompile(`manufactured by (\w+)`),
		regexp.MustCompile(`involving (\w+) aircraft`),
		regexp.MustCompile(`\b(\w+) aircraft\b`),
	} {
		if m := re.FindStringSubmatch(st.text); m != nil {
			name := m[1]
			if !genericAircraftWord[name] {
				st.addFilter("aircraft", "contains", strings.Title(name))
				st.consume(m[0])
			}
		}
	}

	// US states.
	for _, f := range []string{"new hampshire", "new jersey", "new mexico", "new york",
		"north carolina", "north dakota", "south carolina", "south dakota",
		"rhode island", "west virginia"} {
		if st.has(f) {
			st.addFilter("us_state", "term", llm.StateAbbrev(f))
			st.consume(f)
		}
	}
	for _, tok := range strings.Fields(st.text) {
		if ab := llm.StateAbbrev(tok); ab != "" && len(tok) > 2 {
			st.addFilter("us_state", "term", ab)
			st.consume(tok)
		}
	}

	// Months and years.
	for _, m := range monthNames {
		if st.has(" " + m + " ") {
			st.addFilter("month", "term", strings.Title(m))
			st.consume(" " + m + " ")
			break
		}
	}
	if m := regexp.MustCompile(`\b(19|20)\d{2}\b`).FindString(st.text); m != "" {
		year, _ := strconv.Atoi(m)
		st.addFilter("year", "term", year)
		st.consume(m)
	}

	// Damage levels.
	switch {
	case st.has("substantial damage") || st.has("substantially damaged"):
		st.addFilter("aircraftDamage", "term", "Substantial")
		st.consume("substantial damage")
		st.consume("substantially damaged")
		st.consume("that resulted in")
		st.consume("resulted in")
		st.consume("with")
	case st.has("destroyed"):
		st.addFilter("aircraftDamage", "term", "Destroyed")
		st.consume("destroyed")
	case st.has("minor damage"):
		st.addFilter("aircraftDamage", "term", "Minor")
		st.consume("minor damage")
	}

	// Engine count.
	switch {
	case st.has("single engine") || st.has("single-engine"):
		st.addFilter("engines", "term", 1)
		st.consume("single engine")
		st.consume("single-engine")
	case st.has("twin engine") || st.has("twin-engine"):
		st.addFilter("engines", "term", 2)
		st.consume("twin engine")
		st.consume("twin-engine")
	}

	// Aircraft category.
	for _, cat := range []string{"helicopter", "glider", "airplane"} {
		if st.has(cat) {
			st.addFilter("aircraftCategory", "term", strings.Title(cat))
			st.consume(cat + "s")
			st.consume(cat)
			st.consume("involved")
			break
		}
	}

	// Injuries.
	if st.has("fatal") {
		st.addFilter("fatalities", "gte", 1)
		st.consume("fatalities")
		st.consume("fatal")
		st.consume("resulted in")
		st.consume("involved")
	}

	// Pilot certificate.
	if st.has("student pilot") {
		st.addFilter("pilotCertificate", "contains", "Student")
		st.consume("student pilots")
		st.consume("student pilot")
	}

	// Light conditions.
	if st.has("at night") || st.has("night") {
		st.addFilter("conditionOfLight", "term", "Night")
		st.consume("at night")
		st.consume("night")
	}

	// Meteorological conditions.
	if st.has("instrument meteorological") || st.has(" imc") {
		st.addFilter("conditions", "contains", "IMC")
		st.consume("instrument meteorological conditions")
		st.consume("instrument meteorological")
		st.consume(" imc")
	}

	// Regulation part.
	if m := regexp.MustCompile(`part (\d+)`).FindStringSubmatch(st.text); m != nil {
		st.addFilter("flightConductedUnder", "contains", "Part "+m[1])
		st.consume(m[0])
		st.consume("conducted under")
		st.consume("flights were")
	}

	// Weather causation maps to the extracted boolean.
	if st.has("weather") {
		st.addFilter("weather_related", "term", true)
		st.consume("caused by weather")
		st.consume("weather related")
		st.consume("weather-related")
		st.consume("weather")
	}

	// Residual semantic predicates (birds, engine problems, fire, water,
	// midair …) become llmFilter questions over the document text.
	st.collectResiduals()
}

var genericAircraftWord = map[string]bool{
	"single": true, "twin": true, "the": true, "all": true, "of": true,
	"these": true, "those": true, "any": true, "each": true, "that": true,
	"involving": true, "most": true, "by": true, "in": true, "an": true,
	"a": true, "and": true, "for": true, "or": true, "to": true,
	"many": true, "engine": true, "which": true, "was": true, "were": true,
	"involved": true, "destroyed": true, "damaged": true, "with": true,
}

// scaffolding words that are question structure, not content.
var scaffold = map[string]bool{
	"how": true, "many": true, "what": true, "which": true, "was": true,
	"were": true, "there": true, "in": true, "the": true, "of": true,
	"by": true, "broken": true, "down": true, "breakdown": true, "each": true,
	"per": true, "incidents": true, "incident": true, "accidents": true,
	"accident": true, "occurred": true, "involved": true, "involving": true,
	"due": true, "to": true, "a": true, "an": true, "and": true, "or": true,
	"most": true, "common": true, "commonly": true, "total": true, "number": true,
	"list": true, "summarize": true, "themes": true, "fraction": true,
	"percentage": true, "average": true, "maximum": true, "minimum": true,
	"recorded": true, "aircraft": true, "that": true, "resulted": true,
	"with": true, "top": true, "three": true, "two": true, "had": true,
	"state": true, "states": true, "did": true, "is": true, "are": true,
	"caused": true, "causes": true, "cause": true, "causal": true, "flights": true,
	"conducted": true, "under": true, "knots": true, "numbers": true,
	"registration": true, "pilots": true, "time": true, "flight": true,
	"parts": true, "part": true, "damaged": true, "probable": true,
	"results": true, "result": true, "show": true, "only": true,
	"about": true, "now": true,
}

// collectResiduals turns the remaining content words into llmFilter
// predicates, one per contiguous phrase.
func (st *parseState) collectResiduals() {
	// Only the condition-bearing part of the question matters; aggregate
	// targets ("most commonly damaged part") are parsed separately, so
	// strip aggregate clauses before collecting residuals.
	text := st.text
	for _, re := range aggregateClauseRes {
		text = re.ReplaceAllString(text, " ")
	}
	var cur []string
	flush := func() {
		if len(cur) > 0 {
			st.llmPreds = append(st.llmPreds, strings.Join(cur, " "))
			cur = nil
		}
	}
	for _, tok := range strings.Fields(text) {
		tok = strings.Trim(tok, ",.;:()'\"")
		if tok == "" || scaffold[tok] || llm.IsStopword(tok) && scaffold[tok] {
			flush()
			continue
		}
		if scaffold[tok] {
			flush()
			continue
		}
		cur = append(cur, tok)
	}
	flush()
}

var aggregateClauseRes = []*regexp.Regexp{
	regexp.MustCompile(`most commonly? [a-z ]*?(part|parts)[a-z ]*`),
	regexp.MustCompile(`top \w+ most common [a-z ]*`),
	regexp.MustCompile(`average [a-z ]*`),
	regexp.MustCompile(`maximum [a-z ]*`),
	regexp.MustCompile(`breakdown of [a-z ]* by [a-z ]*`),
	regexp.MustCompile(`broken down by [a-z ]*`),
	regexp.MustCompile(`in each [a-z ]*`),
	regexp.MustCompile(`probable cause`),
}

// resolveField links a phrase to the schema field with the greatest token
// overlap — the planner's schema-linking step. Ties resolve to the first
// field in schema order, which is how "aircraft manufacturer" lands on the
// wrong field (§7.2, query-interpretation error).
func (p *parser) resolveField(phrase string) string {
	ptoks := fieldTokens(phrase)
	if len(ptoks) == 0 {
		return ""
	}
	best, bestScore := "", 0
	for _, f := range p.schema.Fields {
		ftoks := fieldTokens(f.Name)
		score := 0
		for _, t := range ptoks {
			for _, ft := range ftoks {
				if t == ft || strings.HasPrefix(ft, t) || strings.HasPrefix(t, ft) {
					score++
					break
				}
			}
		}
		if score > bestScore {
			best, bestScore = f.Name, score
		}
	}
	return best
}

func fieldTokens(s string) []string {
	var sb strings.Builder
	runes := []rune(s)
	for i, r := range runes {
		if r >= 'A' && r <= 'Z' && i > 0 && runes[i-1] >= 'a' && runes[i-1] <= 'z' {
			sb.WriteByte(' ')
		}
		if r == '_' || r == '-' {
			sb.WriteByte(' ')
		} else {
			sb.WriteRune(r)
		}
	}
	var out []string
	for _, t := range strings.Fields(strings.ToLower(sb.String())) {
		if t == "us" || t == "of" || t == "the" || t == "number" {
			continue
		}
		out = append(out, t)
	}
	return out
}

// buildOps assembles the operator chain from the parsed pieces.
func (st *parseState) buildOps() []LogicalOp {
	var ops []LogicalOp
	q := strings.ToLower(st.original)
	// Breakdown detection runs over the post-consumption text so that
	// consumed condition phrases ("caused by weather") cannot masquerade
	// as group-by clauses.
	clean := strings.Join(strings.Fields(st.text), " ")

	// Exploratory "find/search" questions root at semantic search over the
	// chunk index (queryVectorDatabase) and list the matches.
	if m := regexp.MustCompile(`^(?:find|search for|retrieve) (?:reports |documents |incidents )?(?:about |mentioning |similar to |related to )?(.{3,})$`).FindStringSubmatch(q); m != nil {
		k := 10
		ops = append(ops,
			LogicalOp{Op: OpQueryVectorDatabase, Query: strings.TrimSpace(m[1]), K: k},
			LogicalOp{Op: OpProject, ProjectFields: []string{"accidentNumber"}})
		return ops
	}

	// Retrieval root: metadata scan with the recognized filters.
	ops = append(ops, LogicalOp{Op: OpQueryDatabase, Filters: st.filters})
	for _, pred := range st.llmPreds {
		ops = append(ops, LogicalOp{Op: OpLLMFilter, Question: "Does the document indicate " + pred + "?"})
	}

	switch {
	case strings.Contains(q, "fraction") || strings.Contains(q, "percentage"):
		// "what fraction of <base> were <pred>": the base filters are already
		// applied; the last llmFilter (if any) becomes the numerator.
		frac := LogicalOp{Op: OpFraction}
		if n := len(ops); n > 1 && ops[n-1].Op == OpLLMFilter {
			frac.Question = ops[n-1].Question
			ops = ops[:n-1]
		}
		ops = append(ops, frac)

	case hasMode(q):
		// "most common X" / "top N most common X".
		target, k := modeTarget(q)
		field := st.parser.resolveField(target)
		if field == "" || strings.Contains(target, "part") {
			// Not in the schema: extract at query time (§2's flagship
			// example — parts data extracted with semantic operators).
			field = "damaged_part"
			ops = append(ops, LogicalOp{Op: OpLLMExtract, Fields: []llm.FieldSpec{{Name: field, Type: "string"}}})
		}
		ops = append(ops,
			LogicalOp{Op: OpGroupByAggregate, Key: field, Agg: "count"},
			LogicalOp{Op: OpTopK, Field: "value", K: k})

	case strings.Contains(q, "average ") || strings.Contains(q, "maximum ") || strings.Contains(q, "minimum "):
		agg, target := aggTarget(q)
		field := st.parser.resolveField(target)
		if field == "" {
			field = target
		}
		ops = append(ops, LogicalOp{Op: OpGroupByAggregate, Key: "", Agg: agg, ValueField: field})

	case breakdownField(clean) != "" && st.parser.resolveField(breakdownField(clean)) != "":
		field := st.parser.resolveField(breakdownField(clean))
		ops = append(ops, LogicalOp{Op: OpGroupByAggregate, Key: field, Agg: "count"})

	case regexp.MustCompile(`^which [a-z ]+ had the most`).MatchString(q):
		m := regexp.MustCompile(`^which ([a-z ]+?) had the most`).FindStringSubmatch(q)
		field := st.parser.resolveField(m[1])
		ops = append(ops,
			LogicalOp{Op: OpGroupByAggregate, Key: field, Agg: "count"},
			LogicalOp{Op: OpTopK, Field: "value", K: 1})

	case strings.HasPrefix(q, "how many") || strings.HasPrefix(q, "count"):
		ops = append(ops, LogicalOp{Op: OpCount})

	case strings.HasPrefix(q, "which") || strings.HasPrefix(q, "list"):
		field := "accidentNumber"
		if strings.Contains(q, "registration") {
			field = "registration"
		}
		ops = append(ops, LogicalOp{Op: OpProject, ProjectFields: []string{field}})

	case strings.Contains(q, "probable cause"):
		ops = append(ops, LogicalOp{Op: OpProject, ProjectFields: []string{"probable_cause"}})

	case strings.HasPrefix(q, "summarize"):
		ops = append(ops, LogicalOp{Op: OpLLMGenerate, Instruction: st.original})

	case strings.HasPrefix(q, "cluster"):
		k := 5
		if m := regexp.MustCompile(`(\d+) clusters?`).FindStringSubmatch(q); m != nil {
			k, _ = strconv.Atoi(m[1])
		}
		ops = append(ops, LogicalOp{Op: OpLLMCluster, K: k})

	default:
		// Open question: retrieve and generate.
		ops = append(ops, LogicalOp{Op: OpLLMGenerate, Instruction: st.original})
	}
	return ops
}

func hasMode(q string) bool {
	return strings.Contains(q, "most common") || strings.Contains(q, "most frequently")
}

var topNWords = map[string]int{"two": 2, "three": 3, "four": 4, "five": 5, "ten": 10}

func modeTarget(q string) (target string, k int) {
	k = 1
	if m := regexp.MustCompile(`top (\w+) most common(?:ly)? ([a-z _]+?)(?: with| in| of|$)`).FindStringSubmatch(q); m != nil {
		if n, err := strconv.Atoi(m[1]); err == nil {
			k = n
		} else if n, ok := topNWords[m[1]]; ok {
			k = n
		}
		return strings.TrimSpace(m[2]), k
	}
	if m := regexp.MustCompile(`most common(?:ly)? ([a-z _]+?)(?: of| in| with|$)`).FindStringSubmatch(q); m != nil {
		return strings.TrimSpace(m[1]), k
	}
	return "damaged_part", k
}

func aggTarget(q string) (agg, target string) {
	for word, a := range map[string]string{"average": "avg", "maximum": "max", "minimum": "min"} {
		if m := regexp.MustCompile(word + ` ([a-z _]+?)(?: of| in| recorded|,|$)`).FindStringSubmatch(q); m != nil {
			return a, strings.TrimSpace(m[1])
		}
	}
	return "avg", ""
}

func breakdownField(q string) string {
	for _, re := range []*regexp.Regexp{
		regexp.MustCompile(`broken down by ([a-z _]+?)(?:\?|$)`),
		regexp.MustCompile(`breakdown of [a-z ]+ by ([a-z _]+?)(?:\?|$)`),
		regexp.MustCompile(`in each ([a-z _]+?)(?:\?|$)`),
		regexp.MustCompile(`\bper ([a-z _]+?)(?:\?|$)`),
		regexp.MustCompile(`^how many [a-z ]+ by ([a-z _]+?)(?:\?|$)`),
	} {
		if m := re.FindStringSubmatch(strings.ToLower(q)); m != nil {
			return strings.TrimSpace(m[1])
		}
	}
	return ""
}
