package luna

import (
	"context"
	"errors"
	"strings"
	"testing"

	"aryn/internal/docset"
	"aryn/internal/llm"
)

// brokenLLM fails every completion with a permanent error.
type brokenLLM struct{ err error }

func (b brokenLLM) Complete(context.Context, llm.Request) (llm.Response, error) {
	return llm.Response{}, b.err
}
func (b brokenLLM) Name() string { return "broken" }

// TestRunReturnsPartialResultOnFailure pins the degradation contract at
// the executor boundary: a failed query still hands back a Result whose
// trace and EXPLAIN ANALYZE view pin the failure to the node that died,
// so the serving layer can degrade with provenance instead of discarding
// everything.
func TestRunReturnsPartialResultOnFailure(t *testing.T) {
	ex, _ := executorFixture(t)
	boom := errors.New("model exploded")
	ex.EC = docset.NewContext(docset.WithLLM(brokenLLM{err: boom}), docset.WithRetries(0))

	res, err := ex.Run(context.Background(), &LogicalPlan{Ops: []LogicalOp{
		{Op: OpQueryDatabase},
		{Op: OpLLMFilter, Question: "Does the document mention birds?"},
		{Op: OpCount},
	}})
	if err == nil {
		t.Fatal("want the execution failure to surface")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error lost the cause: %v", err)
	}
	if res == nil {
		t.Fatal("failed Run returned a nil Result; partial results must survive")
	}
	if res.Trace == nil || res.Exec == nil {
		t.Fatal("partial Result is missing its trace or EXPLAIN ANALYZE view")
	}

	var annotated bool
	for _, nt := range res.Trace.Nodes {
		if strings.Contains(nt.Err, "model exploded") {
			annotated = true
		}
	}
	if !annotated {
		t.Error("no trace node carries the failing operator's error")
	}

	var pinned bool
	for _, n := range res.Exec.Nodes {
		if n.Op == string(OpLLMFilter) && strings.Contains(n.Runtime.Error, "model exploded") {
			pinned = true
		}
	}
	if !pinned {
		t.Errorf("EXPLAIN ANALYZE did not pin the failure to the llmFilter node: %+v", res.Exec.Nodes)
	}
}

// TestRunPartialSurvivesTransientExhaustion: retries-exhausted transient
// failures degrade the same way, and the retry effort is visible.
func TestRunPartialSurvivesTransientExhaustion(t *testing.T) {
	ex, _ := executorFixture(t)
	ex.EC = docset.NewContext(docset.WithLLM(brokenLLM{err: llm.ErrTransient}), docset.WithRetries(1))

	res, err := ex.Run(context.Background(), &LogicalPlan{Ops: []LogicalOp{
		{Op: OpQueryDatabase},
		{Op: OpLLMFilter, Question: "Does the document mention birds?"},
		{Op: OpCount},
	}})
	if err == nil || res == nil {
		t.Fatalf("want (partial result, error); got res=%v err=%v", res != nil, err)
	}
	var retried bool
	for _, n := range res.Exec.Nodes {
		if n.Op == string(OpLLMFilter) && n.Runtime.Retries > 0 {
			retried = true
		}
	}
	if !retried {
		t.Error("EXPLAIN ANALYZE shows no retries for the exhausted llmFilter node")
	}
}
