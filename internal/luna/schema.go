package luna

import (
	"fmt"
	"sort"
	"strings"

	"aryn/internal/index"
)

// SchemaField describes one queryable property: name, type, and example
// values drawn from the data (§6.1: "for each schema field, we include a
// short description as well as a few example values").
type SchemaField struct {
	Name        string   `json:"name"`
	Type        string   `json:"type"` // string | int | float | bool
	Description string   `json:"description,omitempty"`
	Examples    []string `json:"examples,omitempty"`
}

// Schema is the DocSet schema handed to the planner. It always includes
// the implicit "text-representation" pseudo-field (the full document
// content reachable via llmFilter/llmExtract).
type Schema struct {
	Fields []SchemaField `json:"fields"`
}

// Field returns the named field (nil if absent).
func (s Schema) Field(name string) *SchemaField {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return &s.Fields[i]
		}
	}
	return nil
}

// InferSchema derives the schema from the documents stored in the index:
// every property name with its observed type and up to three sample
// values, alphabetically ordered. It only reads, so it runs over the
// store's shared zero-clone snapshots — planning never copies the corpus.
func InferSchema(store *index.Store) Schema {
	type agg struct {
		typ      string
		examples []string
		seen     map[string]bool
	}
	fields := map[string]*agg{}
	for _, d := range store.Documents() {
		// Visit properties in sorted order: example collection caps at
		// three values, and the planner prompt must be byte-identical
		// across runs, so nothing here may depend on map order.
		keys := make([]string, 0, len(d.Properties))
		for k := range d.Properties {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v := d.Properties[k]
			if v == nil {
				continue
			}
			a := fields[k]
			if a == nil {
				a = &agg{seen: map[string]bool{}}
				fields[k] = a
			}
			t := typeName(v)
			switch {
			case a.typ == "":
				a.typ = t
			case a.typ != t:
				a.typ = "string" // mixed types degrade to string
			}
			ex := fmt.Sprintf("%v", v)
			if len(ex) > 60 {
				ex = ex[:59] + "…"
			}
			if len(a.examples) < 3 && !a.seen[ex] {
				a.seen[ex] = true
				a.examples = append(a.examples, ex)
			}
		}
	}
	names := make([]string, 0, len(fields))
	for k := range fields {
		names = append(names, k)
	}
	sort.Strings(names)
	schema := Schema{}
	for _, n := range names {
		a := fields[n]
		schema.Fields = append(schema.Fields, SchemaField{Name: n, Type: a.typ, Examples: a.examples})
	}
	return schema
}

func typeName(v any) string {
	switch v.(type) {
	case bool:
		return "bool"
	case float64, float32:
		return "float"
	case int, int64:
		return "int"
	default:
		return "string"
	}
}

// PromptBlock renders the schema section of the planning prompt.
func (s Schema) PromptBlock() string {
	var sb strings.Builder
	sb.WriteString("SCHEMA:\n")
	for _, f := range s.Fields {
		fmt.Fprintf(&sb, "- %s (%s)", f.Name, f.Type)
		if f.Description != "" {
			sb.WriteString(": " + f.Description)
		}
		if len(f.Examples) > 0 {
			sb.WriteString(" e.g. " + strings.Join(f.Examples, " ; "))
		}
		sb.WriteString("\n")
	}
	sb.WriteString("- text-representation (string): the complete textual content of each document\n")
	return sb.String()
}

// parseSchemaBlock reads a schema back out of a planning prompt — the
// planner skill's view of what fields exist. It must round-trip
// PromptBlock.
func parseSchemaBlock(prompt string) Schema {
	idx := strings.Index(prompt, "SCHEMA:\n")
	if idx < 0 {
		return Schema{}
	}
	var s Schema
	for _, line := range strings.Split(prompt[idx+len("SCHEMA:\n"):], "\n") {
		if !strings.HasPrefix(line, "- ") {
			break
		}
		line = strings.TrimPrefix(line, "- ")
		name, rest, ok := strings.Cut(line, " (")
		if !ok {
			continue
		}
		typ, tail, _ := strings.Cut(rest, ")")
		if name == "text-representation" {
			continue
		}
		f := SchemaField{Name: strings.TrimSpace(name), Type: strings.TrimSpace(typ)}
		if _, exs, ok := strings.Cut(tail, "e.g. "); ok {
			for _, ex := range strings.Split(exs, " ; ") {
				f.Examples = append(f.Examples, strings.TrimSpace(ex))
			}
		}
		s.Fields = append(s.Fields, f)
	}
	return s
}
