package luna

import (
	"errors"
	"fmt"
	"strings"
)

// ErrInvalidPlan wraps all plan validation failures.
var ErrInvalidPlan = errors.New("luna: invalid plan")

// Validate checks a plan structurally (well-formed DAG: unique node IDs,
// no dangling inputs, no cycles, correct input arity, a single output
// sink every node feeds) and semantically (known operators, required
// parameters, filter and group-by fields must exist in the schema or be
// produced upstream) — the §6.1 validation step that catches LLM
// hallucinations before execution.
//
// All node-level failures are aggregated with errors.Join rather than
// stopping at the first, so a plan-editing client sees every problem in
// one round trip; the combined error still matches ErrInvalidPlan.
func Validate(plan *LogicalPlan, schema Schema) error {
	if plan == nil {
		return fmt.Errorf("%w: empty plan", ErrInvalidPlan)
	}
	plan.normalize()
	if len(plan.Nodes) == 0 {
		return fmt.Errorf("%w: empty plan", ErrInvalidPlan)
	}

	var errs []error
	addf := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("%w: "+format, append([]any{ErrInvalidPlan}, args...)...))
	}

	order, terr := plan.topoOrder()
	if terr != nil {
		// Without a topological order there is no provenance walk;
		// report the structural fault alone.
		addf("%v", terr)
		return errors.Join(errs...)
	}

	// Output resolution: the plan must name (or imply) exactly one sink.
	output := plan.Output
	if output == "" {
		addf("plan has no output node (sinks: %s)", strings.Join(plan.sinks(), ", "))
	} else if plan.node(output) == nil {
		addf("output %q names no node", output)
		output = ""
	} else if len(plan.consumers(output)) > 0 {
		addf("output node %s is consumed by %s and cannot be the result",
			output, strings.Join(plan.consumers(output), ", "))
	}
	for _, sink := range plan.sinks() {
		if sink != output {
			addf("node %s does not feed the output (dangling branch)", sink)
		}
	}

	// Provenance walk: the set of fields visible at each node is the
	// schema plus everything its ancestors materialized.
	base := map[string]bool{}
	for _, f := range schema.Fields {
		base[f.Name] = true
	}
	visible := map[string]map[string]bool{}

	for _, idx := range order {
		n := plan.Nodes[idx]
		id := n.ID

		// Input arity per operator class.
		switch n.Op {
		case OpQueryDatabase, OpQueryVectorDatabase:
			if len(n.Inputs) != 0 {
				addf("node %s: %s is a source and takes no inputs, got %d", id, n.Op, len(n.Inputs))
			}
		case OpJoin:
			if len(n.Inputs) != 2 {
				addf("node %s: join takes exactly 2 inputs (left, right), got %d", id, len(n.Inputs))
			}
		default:
			if len(n.Inputs) != 1 {
				addf("node %s: %s takes exactly 1 input, got %d", id, n.Op, len(n.Inputs))
			}
		}

		known := fieldsAt(plan, n, visible, base)

		switch n.Op {
		case OpQueryDatabase:
			validFilters(id, n.Filters, known, addf)
		case OpQueryVectorDatabase:
			if n.Query == "" {
				addf("node %s: queryVectorDatabase requires a query", id)
			}
		case OpBasicFilter:
			validFilters(id, n.Filters, known, addf)
		case OpLLMFilter:
			if n.Question == "" {
				addf("node %s: llmFilter requires a question", id)
			}
		case OpLLMFilterCascade:
			if n.Question == "" {
				addf("node %s: llmFilterCascade requires a question", id)
			}
			if n.High != 0 && n.Low > n.High {
				addf("node %s: llmFilterCascade band is empty (low %g > high %g)", id, n.Low, n.High)
			}
		case OpLLMExtract:
			if len(n.Fields) == 0 {
				addf("node %s: llmExtract requires fields", id)
			}
		case OpGroupByAggregate:
			if n.Key != "" && !known[n.Key] {
				addf("node %s: group key %q not in schema", id, n.Key)
			}
			switch n.Agg {
			case "count":
			case "sum", "avg", "min", "max":
				if n.ValueField == "" || !known[n.ValueField] {
					addf("node %s: aggregate field %q not in schema", id, n.ValueField)
				}
			default:
				addf("node %s: unknown aggregation %q", id, n.Agg)
			}
		case OpLLMCluster:
			if n.K <= 0 {
				addf("node %s: llmCluster requires k > 0", id)
			}
		case OpTopK:
			if n.K <= 0 || n.Field == "" {
				addf("node %s: topK requires field and k > 0", id)
			} else if !known[n.Field] {
				addf("node %s: topK field %q not in schema", id, n.Field)
			}
		case OpCount, OpFraction, OpLLMGenerate:
			if id != output {
				addf("node %s: %s must be the output node", id, n.Op)
			}
		case OpLimit:
			if n.K <= 0 {
				addf("node %s: limit requires n > 0", id)
			}
		case OpProject:
			if len(n.ProjectFields) == 0 {
				addf("node %s: project requires fields", id)
			}
			for _, f := range n.ProjectFields {
				if !known[f] {
					addf("node %s: projected field %q not in schema", id, f)
				}
			}
		case opDistinct:
			if n.Field == "" {
				addf("node %s: distinct requires a field", id)
			}
		case OpJoin:
			switch joinKindOrDefault(n.JoinKind) {
			case "inner", "left", "semi", "anti":
			default:
				addf("node %s: unknown join kind %q", id, n.JoinKind)
			}
			if n.LeftKey == "" || n.RightKey == "" {
				addf("node %s: join requires left_key and right_key", id)
			} else if len(n.Inputs) == 2 {
				left := fieldSet(plan, n.Inputs[0], visible, base)
				right := fieldSet(plan, n.Inputs[1], visible, base)
				if !left[n.LeftKey] {
					addf("node %s: join left_key %q not produced by input %s", id, n.LeftKey, n.Inputs[0])
				}
				if !right[n.RightKey] {
					addf("node %s: join right_key %q not produced by input %s", id, n.RightKey, n.Inputs[1])
				}
			}
		default:
			addf("node %s: unknown operator %q", id, n.Op)
		}

		visible[id] = produce(plan, n, visible, base)
	}
	return errors.Join(errs...)
}

// fieldsAt is the field set an operator may reference: the union of what
// its inputs produce (the schema itself for roots).
func fieldsAt(plan *LogicalPlan, n PlanNode, visible map[string]map[string]bool, base map[string]bool) map[string]bool {
	if len(n.Inputs) == 0 {
		return base
	}
	out := map[string]bool{}
	for _, in := range n.Inputs {
		for f := range fieldSet(plan, in, visible, base) {
			out[f] = true
		}
	}
	return out
}

// fieldSet returns the fields a node's output carries (base when the walk
// hasn't reached it, which only happens for nodes already flagged).
func fieldSet(plan *LogicalPlan, id string, visible map[string]map[string]bool, base map[string]bool) map[string]bool {
	if s, ok := visible[id]; ok {
		return s
	}
	return base
}

// produce computes the fields flowing out of a node: its visible inputs
// plus whatever it materializes. Join namespaces right-side fields under
// its prefix (matching docset.Join's merge), except for semi/anti joins,
// which filter without enriching.
func produce(plan *LogicalPlan, n PlanNode, visible map[string]map[string]bool, base map[string]bool) map[string]bool {
	out := map[string]bool{}
	if n.Op == OpJoin && len(n.Inputs) == 2 {
		for f := range fieldSet(plan, n.Inputs[0], visible, base) {
			out[f] = true
		}
		if kind := joinKindOrDefault(n.JoinKind); kind == "inner" || kind == "left" {
			prefix := n.Prefix
			if prefix == "" {
				prefix = "right"
			}
			for f := range fieldSet(plan, n.Inputs[1], visible, base) {
				out[prefix+"."+f] = true
			}
		}
		return out
	}
	for f := range fieldsAt(plan, n, visible, base) {
		out[f] = true
	}
	switch n.Op {
	case OpLLMExtract:
		for _, f := range n.Fields {
			out[f.Name] = true
		}
	case OpGroupByAggregate:
		out["value"] = true
		out["count"] = true
		if n.Key == "" {
			out["group"] = true
		}
	case OpLLMCluster:
		out["cluster_id"] = true
		out["cluster_label"] = true
	}
	return out
}

func validFilters(id string, filters []FilterSpec, known map[string]bool, addf func(string, ...any)) {
	for _, f := range filters {
		if f.Field == "" {
			addf("node %s: filter missing field", id)
			continue
		}
		if !known[f.Field] {
			addf("node %s: filter field %q not in schema", id, f.Field)
		}
		switch f.Kind {
		case "term", "contains", "gte", "lte":
		default:
			addf("node %s: unknown filter kind %q", id, f.Kind)
		}
	}
}

// Issues flattens a Validate error into its individual messages (the
// ErrInvalidPlan prefix stripped), ready to surface as a structured
// {"errors": [...]} array. Wrapping layers (the planner's "plan for %q
// failed validation: %w") are peeled off to reach the aggregated
// node-level errors beneath. Returns nil for nil errors and a
// single-entry slice for non-aggregated errors.
func Issues(err error) []string {
	if err == nil {
		return nil
	}
	var out []string
	var walk func(error)
	walk = func(e error) {
		if multi, ok := e.(interface{ Unwrap() []error }); ok {
			for _, c := range multi.Unwrap() {
				walk(c)
			}
			return
		}
		// A single-wrap layer hiding an aggregate beneath (planner-path
		// wrapping): descend rather than reporting the whole blob.
		if inner := errors.Unwrap(e); inner != nil && hasAggregate(inner) {
			walk(inner)
			return
		}
		out = append(out, strings.TrimPrefix(e.Error(), ErrInvalidPlan.Error()+": "))
	}
	walk(err)
	return out
}

// hasAggregate reports whether an errors.Join aggregate sits anywhere
// down the single-unwrap chain of e.
func hasAggregate(e error) bool {
	for e != nil {
		if _, ok := e.(interface{ Unwrap() []error }); ok {
			return true
		}
		e = errors.Unwrap(e)
	}
	return false
}
