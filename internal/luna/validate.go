package luna

import (
	"errors"
	"fmt"
)

// ErrInvalidPlan wraps all plan validation failures.
var ErrInvalidPlan = errors.New("luna: invalid plan")

// Validate checks a planner-produced plan both syntactically (known
// operators, required parameters) and semantically (filter and group-by
// fields must exist in the schema or be produced by an earlier llmExtract)
// — the §6.1 validation step that catches LLM hallucinations before
// execution.
func Validate(plan *LogicalPlan, schema Schema) error {
	if plan == nil || len(plan.Ops) == 0 {
		return fmt.Errorf("%w: empty plan", ErrInvalidPlan)
	}
	if first := plan.Ops[0].Op; first != OpQueryDatabase && first != OpQueryVectorDatabase {
		return fmt.Errorf("%w: plan must start with a query operator, got %q", ErrInvalidPlan, first)
	}
	known := map[string]bool{}
	for _, f := range schema.Fields {
		known[f.Name] = true
	}
	// Fields materialized by earlier operators become valid downstream.
	addExtracted := func(op LogicalOp) {
		for _, f := range op.Fields {
			known[f.Name] = true
		}
		if op.Op == OpGroupByAggregate {
			known["value"] = true
			known["count"] = true
		}
		if op.Op == OpLLMCluster {
			known["cluster_id"] = true
			known["cluster_label"] = true
		}
	}

	for i, op := range plan.Ops {
		switch op.Op {
		case OpQueryDatabase:
			if i != 0 {
				return fmt.Errorf("%w: op %d: queryDatabase must be the plan root", ErrInvalidPlan, i+1)
			}
			if err := validFilters(op.Filters, known); err != nil {
				return err
			}
		case OpQueryVectorDatabase:
			if i != 0 {
				return fmt.Errorf("%w: op %d: queryVectorDatabase must be the plan root", ErrInvalidPlan, i+1)
			}
			if op.Query == "" {
				return fmt.Errorf("%w: queryVectorDatabase requires a query", ErrInvalidPlan)
			}
		case OpBasicFilter:
			if err := validFilters(op.Filters, known); err != nil {
				return err
			}
		case OpLLMFilter:
			if op.Question == "" {
				return fmt.Errorf("%w: op %d: llmFilter requires a question", ErrInvalidPlan, i+1)
			}
		case OpLLMExtract:
			if len(op.Fields) == 0 {
				return fmt.Errorf("%w: op %d: llmExtract requires fields", ErrInvalidPlan, i+1)
			}
			addExtracted(op)
		case OpGroupByAggregate:
			if op.Key != "" && !known[op.Key] {
				return fmt.Errorf("%w: op %d: group key %q not in schema", ErrInvalidPlan, i+1, op.Key)
			}
			switch op.Agg {
			case "count":
			case "sum", "avg", "min", "max":
				if op.ValueField == "" || !known[op.ValueField] {
					return fmt.Errorf("%w: op %d: aggregate field %q not in schema", ErrInvalidPlan, i+1, op.ValueField)
				}
			default:
				return fmt.Errorf("%w: op %d: unknown aggregation %q", ErrInvalidPlan, i+1, op.Agg)
			}
			addExtracted(op)
		case OpLLMCluster:
			if op.K <= 0 {
				return fmt.Errorf("%w: op %d: llmCluster requires k > 0", ErrInvalidPlan, i+1)
			}
			addExtracted(op)
		case OpTopK:
			if op.K <= 0 || op.Field == "" {
				return fmt.Errorf("%w: op %d: topK requires field and k > 0", ErrInvalidPlan, i+1)
			}
			if !known[op.Field] {
				return fmt.Errorf("%w: op %d: topK field %q not in schema", ErrInvalidPlan, i+1, op.Field)
			}
		case OpCount, OpFraction, OpLLMGenerate:
			if i != len(plan.Ops)-1 {
				return fmt.Errorf("%w: op %d: %s must be the terminal operator", ErrInvalidPlan, i+1, op.Op)
			}
		case OpLimit:
			if op.K <= 0 {
				return fmt.Errorf("%w: op %d: limit requires n > 0", ErrInvalidPlan, i+1)
			}
		case OpProject:
			if len(op.ProjectFields) == 0 {
				return fmt.Errorf("%w: op %d: project requires fields", ErrInvalidPlan, i+1)
			}
			for _, f := range op.ProjectFields {
				if !known[f] {
					return fmt.Errorf("%w: op %d: projected field %q not in schema", ErrInvalidPlan, i+1, f)
				}
			}
		default:
			return fmt.Errorf("%w: op %d: unknown operator %q", ErrInvalidPlan, i+1, op.Op)
		}
	}
	return nil
}

func validFilters(filters []FilterSpec, known map[string]bool) error {
	for _, f := range filters {
		if f.Field == "" {
			return fmt.Errorf("%w: filter missing field", ErrInvalidPlan)
		}
		if !known[f.Field] {
			return fmt.Errorf("%w: filter field %q not in schema", ErrInvalidPlan, f.Field)
		}
		switch f.Kind {
		case "term", "contains", "gte", "lte":
		default:
			return fmt.Errorf("%w: unknown filter kind %q", ErrInvalidPlan, f.Kind)
		}
	}
	return nil
}
