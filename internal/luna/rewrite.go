package luna

// RewriteOptions toggles individual rewrite rules, primarily for the
// ablation benchmarks.
type RewriteOptions struct {
	// FuseExtracts merges chained llmExtract operators into one LLM
	// call per document (§6.1's example rewrite).
	FuseExtracts bool
	// PushFilters merges basicFilter predicates into their upstream
	// queryDatabase root so the index evaluates them during the scan.
	PushFilters bool
	// DropDuplicateFilters removes llmFilter nodes repeating a question
	// already asked on their ancestor path.
	DropDuplicateFilters bool
	// DedupByAccident inserts a distinct-by-accident-number step before
	// counting operators. The paper identifies the *absence* of this step
	// as the source of Luna's counting errors (§7.2), so it is OFF by
	// default; the ablation bench turns it on.
	DedupByAccident bool
	// DedupField is the identity field DedupByAccident uses.
	DedupField string
}

// DefaultRewrites returns the rule set Luna runs in production mode.
func DefaultRewrites() RewriteOptions {
	return RewriteOptions{FuseExtracts: true, PushFilters: true, DropDuplicateFilters: true}
}

// Rewrite applies rule-based plan optimization (§6.1) over the DAG and
// returns a new plan; the input is not modified. Every rule operates on
// nodes and edges, so it applies uniformly to chains and join plans.
func Rewrite(plan *LogicalPlan, opts RewriteOptions) *LogicalPlan {
	plan.normalize()
	p := plan.Clone()

	if opts.FuseExtracts {
		fuseExtracts(p)
	}
	if opts.PushFilters {
		pushFilters(p)
	}
	if opts.DropDuplicateFilters {
		dropDuplicateFilters(p)
	}
	if opts.DedupByAccident {
		field := opts.DedupField
		if field == "" {
			field = "accidentNumber"
		}
		insertDedup(p, field)
	}
	p.syncLinearView()
	return p
}

// splice removes node id from the DAG, reconnecting its consumers to its
// single input (its input's consumers inherit the edge). The node must
// have exactly one input.
func splice(p *LogicalPlan, id string) {
	n := p.node(id)
	if n == nil || len(n.Inputs) != 1 {
		return
	}
	in := n.Inputs[0]
	for i := range p.Nodes {
		for j, edge := range p.Nodes[i].Inputs {
			if edge == id {
				p.Nodes[i].Inputs[j] = in
			}
		}
	}
	if p.Output == id {
		p.Output = in
	}
	for i := range p.Nodes {
		if p.Nodes[i].ID == id {
			p.Nodes = append(p.Nodes[:i], p.Nodes[i+1:]...)
			break
		}
	}
}

// fuseExtracts merges an llmExtract node into an upstream llmExtract it
// exclusively consumes, repeating until no such edge remains.
func fuseExtracts(p *LogicalPlan) {
	for {
		fused := false
		for i := range p.Nodes {
			n := p.Nodes[i]
			if n.Op != OpLLMExtract || len(n.Inputs) != 1 {
				continue
			}
			up := p.node(n.Inputs[0])
			if up == nil || up.Op != OpLLMExtract || len(p.consumers(up.ID)) != 1 {
				continue
			}
			seen := map[string]bool{}
			for _, f := range up.Fields {
				seen[f.Name] = true
			}
			for _, f := range n.Fields {
				if !seen[f.Name] {
					up.Fields = append(up.Fields, f)
				}
			}
			splice(p, n.ID)
			fused = true
			break
		}
		if !fused {
			return
		}
	}
}

// pushFilters folds a basicFilter into the queryDatabase it exclusively
// consumes, so the index evaluates the predicate during the scan.
func pushFilters(p *LogicalPlan) {
	for {
		pushed := false
		for i := range p.Nodes {
			n := p.Nodes[i]
			if n.Op != OpBasicFilter || len(n.Inputs) != 1 {
				continue
			}
			root := p.node(n.Inputs[0])
			if root == nil || root.Op != OpQueryDatabase || len(p.consumers(root.ID)) != 1 {
				continue
			}
			root.Filters = append(root.Filters, n.Filters...)
			splice(p, n.ID)
			pushed = true
			break
		}
		if !pushed {
			return
		}
	}
}

// dropDuplicateFilters removes an llmFilter node whose question already
// appears on its ancestor path (asking twice cannot change the result).
func dropDuplicateFilters(p *LogicalPlan) {
	for {
		dropped := false
		for i := range p.Nodes {
			n := p.Nodes[i]
			if n.Op != OpLLMFilter || len(n.Inputs) != 1 {
				continue
			}
			if ancestorAsks(p, n.Inputs[0], n.Question, map[string]bool{}) {
				splice(p, n.ID)
				dropped = true
				break
			}
		}
		if !dropped {
			return
		}
	}
}

// ancestorAsks reports whether the documents reaching node id have
// already passed an llmFilter with the given question. Only probe-side
// lineage counts: documents flowing out of a join derive from its left
// (first) input, so a filter on the right (build) branch constrained
// different documents and must not suppress a downstream duplicate.
func ancestorAsks(p *LogicalPlan, id, question string, seen map[string]bool) bool {
	if seen[id] {
		return false
	}
	seen[id] = true
	n := p.node(id)
	if n == nil {
		return false
	}
	if n.Op == OpLLMFilter && n.Question == question {
		return true
	}
	inputs := n.Inputs
	if n.Op == OpJoin && len(inputs) > 1 {
		inputs = inputs[:1]
	}
	for _, in := range inputs {
		if ancestorAsks(p, in, question, seen) {
			return true
		}
	}
	return false
}

// insertDedup places a distinct step immediately upstream of the first
// counting operator in topological order (count, fraction, or a
// count-aggregation).
func insertDedup(p *LogicalPlan, field string) {
	order, err := p.topoOrder()
	if err != nil {
		return
	}
	for _, idx := range order {
		n := p.Nodes[idx]
		countLike := n.Op == OpCount || n.Op == OpFraction ||
			(n.Op == OpGroupByAggregate && n.Agg == "count")
		if !countLike || len(n.Inputs) != 1 {
			continue
		}
		d := PlanNode{
			ID:        p.freshID(),
			Inputs:    []string{n.Inputs[0]},
			LogicalOp: LogicalOp{Op: opDistinct, Field: field},
		}
		p.Nodes = append(p.Nodes, d)
		p.node(n.ID).Inputs[0] = d.ID
		return
	}
}

// opDistinct is internal (rewriter-inserted, never planner-emitted, but
// accepted back by Validate so users may resubmit rewritten plans).
const opDistinct = "distinct"

// ExtractFieldsUsed counts LLM calls a plan will make per input document —
// used by the rewrite ablation to show fused plans cost fewer calls.
func ExtractFieldsUsed(plan *LogicalPlan) (extractOps, llmOpsPerDoc int) {
	plan.normalize()
	for _, n := range plan.Nodes {
		switch n.Op {
		case OpLLMExtract:
			extractOps++
			llmOpsPerDoc++
		case OpLLMFilter:
			llmOpsPerDoc++
		}
	}
	return extractOps, llmOpsPerDoc
}
