package luna

// RewriteOptions toggles individual rewrite rules, primarily for the
// ablation benchmarks.
type RewriteOptions struct {
	// FuseExtracts merges consecutive llmExtract operators into one LLM
	// call per document (§6.1's example rewrite).
	FuseExtracts bool
	// PushFilters merges basicFilter predicates into the root
	// queryDatabase so the index evaluates them during the scan.
	PushFilters bool
	// DropDuplicateFilters removes repeated identical llmFilter questions.
	DropDuplicateFilters bool
	// DedupByAccident inserts a distinct-by-accident-number step before
	// counting operators. The paper identifies the *absence* of this step
	// as the source of Luna's counting errors (§7.2), so it is OFF by
	// default; the ablation bench turns it on.
	DedupByAccident bool
	// DedupField is the identity field DedupByAccident uses.
	DedupField string
}

// DefaultRewrites returns the rule set Luna runs in production mode.
func DefaultRewrites() RewriteOptions {
	return RewriteOptions{FuseExtracts: true, PushFilters: true, DropDuplicateFilters: true}
}

// Rewrite applies rule-based plan optimization (§6.1) and returns a new
// plan; the input is not modified.
func Rewrite(plan *LogicalPlan, opts RewriteOptions) *LogicalPlan {
	ops := append([]LogicalOp(nil), plan.Ops...)

	if opts.FuseExtracts {
		ops = fuseExtracts(ops)
	}
	if opts.PushFilters {
		ops = pushFilters(ops)
	}
	if opts.DropDuplicateFilters {
		ops = dropDuplicateFilters(ops)
	}
	if opts.DedupByAccident {
		field := opts.DedupField
		if field == "" {
			field = "accidentNumber"
		}
		ops = insertDedup(ops, field)
	}
	return &LogicalPlan{Ops: ops}
}

// fuseExtracts merges runs of consecutive llmExtract operators.
func fuseExtracts(ops []LogicalOp) []LogicalOp {
	var out []LogicalOp
	for _, op := range ops {
		if op.Op == OpLLMExtract && len(out) > 0 && out[len(out)-1].Op == OpLLMExtract {
			prev := &out[len(out)-1]
			seen := map[string]bool{}
			for _, f := range prev.Fields {
				seen[f.Name] = true
			}
			for _, f := range op.Fields {
				if !seen[f.Name] {
					prev.Fields = append(prev.Fields, f)
				}
			}
			continue
		}
		out = append(out, op)
	}
	return out
}

// pushFilters folds basicFilter predicates that immediately follow the
// root scan into the scan itself.
func pushFilters(ops []LogicalOp) []LogicalOp {
	if len(ops) < 2 || ops[0].Op != OpQueryDatabase {
		return ops
	}
	out := []LogicalOp{ops[0]}
	i := 1
	for ; i < len(ops) && ops[i].Op == OpBasicFilter; i++ {
		out[0].Filters = append(out[0].Filters, ops[i].Filters...)
	}
	out = append(out, ops[i:]...)
	return out
}

// dropDuplicateFilters removes llmFilter ops repeating an earlier question.
func dropDuplicateFilters(ops []LogicalOp) []LogicalOp {
	seen := map[string]bool{}
	var out []LogicalOp
	for _, op := range ops {
		if op.Op == OpLLMFilter {
			if seen[op.Question] {
				continue
			}
			seen[op.Question] = true
		}
		out = append(out, op)
	}
	return out
}

// insertDedup places a distinct step before the first counting operator
// (count, fraction, or a count-aggregation).
func insertDedup(ops []LogicalOp, field string) []LogicalOp {
	for i, op := range ops {
		countLike := op.Op == OpCount || op.Op == OpFraction ||
			(op.Op == OpGroupByAggregate && op.Agg == "count")
		if countLike {
			out := make([]LogicalOp, 0, len(ops)+1)
			out = append(out, ops[:i]...)
			out = append(out, LogicalOp{Op: opDistinct, Field: field})
			out = append(out, ops[i:]...)
			return out
		}
	}
	return ops
}

// opDistinct is internal (rewriter-inserted, never planner-emitted).
const opDistinct = "distinct"

// ExtractFieldsUsed counts LLM calls a plan will make per input document —
// used by the rewrite ablation to show fused plans cost fewer calls.
func ExtractFieldsUsed(plan *LogicalPlan) (extractOps, llmOpsPerDoc int) {
	for _, op := range plan.Ops {
		switch op.Op {
		case OpLLMExtract:
			extractOps++
			llmOpsPerDoc++
		case OpLLMFilter:
			llmOpsPerDoc++
		}
	}
	return extractOps, llmOpsPerDoc
}
