package luna

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"aryn/internal/llm"
)

// joinFixturePlan is a two-root DAG: KY incidents inner-joined against
// substantially damaged incidents on accident number, then counted.
func joinFixturePlan() *LogicalPlan {
	return &LogicalPlan{
		Nodes: []PlanNode{
			{ID: "n1", LogicalOp: LogicalOp{Op: OpQueryDatabase,
				Filters: []FilterSpec{{Field: "us_state", Kind: "term", Value: "KY"}}}},
			{ID: "n2", LogicalOp: LogicalOp{Op: OpQueryDatabase,
				Filters: []FilterSpec{{Field: "aircraftDamage", Kind: "term", Value: "Substantial"}}}},
			{ID: "n3", Inputs: []string{"n1", "n2"}, LogicalOp: LogicalOp{Op: OpJoin,
				LeftKey: "accidentNumber", RightKey: "accidentNumber", JoinKind: "inner", Prefix: "right"}},
			{ID: "n4", Inputs: []string{"n3"}, LogicalOp: LogicalOp{Op: OpCount}},
		},
		Output: "n4",
	}
}

func TestDAGGoldenEncode(t *testing.T) {
	plan := joinFixturePlan()
	got, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"nodes":[` +
		`{"id":"n1","op":"queryDatabase","filters":[{"field":"us_state","kind":"term","value":"KY"}]},` +
		`{"id":"n2","op":"queryDatabase","filters":[{"field":"aircraftDamage","kind":"term","value":"Substantial"}]},` +
		`{"id":"n3","inputs":["n1","n2"],"op":"join","left_key":"accidentNumber","right_key":"accidentNumber","join_kind":"inner","prefix":"right"},` +
		`{"id":"n4","inputs":["n3"],"op":"count"}` +
		`],"output":"n4"}`
	if string(got) != want {
		t.Errorf("golden DAG encode mismatch:\n got %s\nwant %s", got, want)
	}

	// Decode the golden bytes back and re-encode: must be stable.
	var back LogicalPlan
	if err := json.Unmarshal([]byte(want), &back); err != nil {
		t.Fatal(err)
	}
	got2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(got2) != want {
		t.Errorf("DAG JSON round trip not stable:\n got %s\nwant %s", got2, want)
	}
}

func TestDAGRoundTripPreservesStructure(t *testing.T) {
	plan := joinFixturePlan()
	parsed, err := ParsePlan(plan.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Nodes) != 4 || parsed.Output != "n4" {
		t.Fatalf("round trip lost structure: %s", parsed.JSON())
	}
	join := parsed.node("n3")
	if join == nil || join.Op != OpJoin || len(join.Inputs) != 2 || join.LeftKey != "accidentNumber" {
		t.Errorf("join node lost params: %+v", join)
	}
	if parsed.Ops != nil {
		t.Errorf("a join DAG has no linear view, got %d ops", len(parsed.Ops))
	}
}

func TestLegacyLinearJSONUpConverts(t *testing.T) {
	legacy := `{"ops":[` +
		`{"op":"queryDatabase","filters":[{"field":"us_state","kind":"term","value":"KY"}]},` +
		`{"op":"llmFilter","question":"Does the document indicate birds?"},` +
		`{"op":"count"}]}`
	plan, err := ParsePlan(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Nodes) != 3 || plan.Output != "n3" {
		t.Fatalf("up-conversion wrong: %s", plan.JSON())
	}
	if len(plan.Ops) != 3 || plan.Ops[1].Question != "Does the document indicate birds?" {
		t.Errorf("legacy linear view lost: %+v", plan.Ops)
	}
	for i, n := range plan.Nodes {
		if i == 0 && len(n.Inputs) != 0 {
			t.Errorf("root must have no inputs: %+v", n)
		}
		if i > 0 && (len(n.Inputs) != 1 || n.Inputs[0] != plan.Nodes[i-1].ID) {
			t.Errorf("chain edge %d wrong: %+v", i, n)
		}
	}
	// The up-converted plan re-encodes in the DAG form.
	if !strings.Contains(plan.JSON(), `"nodes"`) {
		t.Errorf("JSON() should emit the DAG form: %s", plan.JSON())
	}
}

func TestLegacyPlanExecutesIdentically(t *testing.T) {
	ex, _ := executorFixture(t)
	legacy, err := ParsePlan(`{"ops":[{"op":"queryDatabase","filters":[{"field":"us_state","kind":"term","value":"KY"}]},{"op":"count"}]}`)
	if err != nil {
		t.Fatal(err)
	}
	direct := &LogicalPlan{Ops: []LogicalOp{
		{Op: OpQueryDatabase, Filters: []FilterSpec{{Field: "us_state", Kind: "term", Value: "KY"}}},
		{Op: OpCount},
	}}
	resLegacy, err := ex.Run(context.Background(), legacy)
	if err != nil {
		t.Fatal(err)
	}
	resDirect, err := ex.Run(context.Background(), direct)
	if err != nil {
		t.Fatal(err)
	}
	if resLegacy.Answer.String() != resDirect.Answer.String() || resLegacy.Answer.Number != 2 {
		t.Errorf("legacy execution diverged: %q vs %q", resLegacy.Answer.String(), resDirect.Answer.String())
	}
	if resLegacy.Compiled != resDirect.Compiled {
		t.Errorf("legacy plan compiled differently:\n%s\nvs\n%s", resLegacy.Compiled, resDirect.Compiled)
	}
}

func TestValidateRejectsMalformedDAGs(t *testing.T) {
	schema := testSchema()
	cases := []struct {
		name string
		plan *LogicalPlan
		want string
	}{
		{"cycle", &LogicalPlan{Nodes: []PlanNode{
			{ID: "n1", Inputs: []string{"n2"}, LogicalOp: LogicalOp{Op: OpLimit, K: 1}},
			{ID: "n2", Inputs: []string{"n1"}, LogicalOp: LogicalOp{Op: OpLimit, K: 1}},
		}, Output: "n2"}, "cycle"},
		{"dangling input", &LogicalPlan{Nodes: []PlanNode{
			{ID: "n1", LogicalOp: LogicalOp{Op: OpQueryDatabase}},
			{ID: "n2", Inputs: []string{"ghost"}, LogicalOp: LogicalOp{Op: OpCount}},
		}, Output: "n2"}, "dangling input"},
		{"duplicate id", &LogicalPlan{Nodes: []PlanNode{
			{ID: "n1", LogicalOp: LogicalOp{Op: OpQueryDatabase}},
			{ID: "n1", Inputs: []string{"n1"}, LogicalOp: LogicalOp{Op: OpCount}},
		}, Output: "n1"}, "duplicate node id"},
		{"unknown output", &LogicalPlan{Nodes: []PlanNode{
			{ID: "n1", LogicalOp: LogicalOp{Op: OpQueryDatabase}},
		}, Output: "zz"}, "names no node"},
		{"dangling branch", &LogicalPlan{Nodes: []PlanNode{
			{ID: "n1", LogicalOp: LogicalOp{Op: OpQueryDatabase}},
			{ID: "n2", LogicalOp: LogicalOp{Op: OpQueryDatabase}},
			{ID: "n3", Inputs: []string{"n1"}, LogicalOp: LogicalOp{Op: OpCount}},
		}, Output: "n3"}, "does not feed the output"},
		{"join arity", &LogicalPlan{Nodes: []PlanNode{
			{ID: "n1", LogicalOp: LogicalOp{Op: OpQueryDatabase}},
			{ID: "n2", Inputs: []string{"n1"}, LogicalOp: LogicalOp{Op: OpJoin, LeftKey: "us_state", RightKey: "us_state"}},
		}, Output: "n2"}, "exactly 2 inputs"},
		{"join key provenance", &LogicalPlan{Nodes: []PlanNode{
			{ID: "n1", LogicalOp: LogicalOp{Op: OpQueryDatabase}},
			{ID: "n2", LogicalOp: LogicalOp{Op: OpQueryDatabase}},
			{ID: "n3", Inputs: []string{"n1", "n2"}, LogicalOp: LogicalOp{Op: OpJoin, LeftKey: "hallucinated", RightKey: "us_state"}},
		}, Output: "n3"}, "left_key"},
		{"join kind", &LogicalPlan{Nodes: []PlanNode{
			{ID: "n1", LogicalOp: LogicalOp{Op: OpQueryDatabase}},
			{ID: "n2", LogicalOp: LogicalOp{Op: OpQueryDatabase}},
			{ID: "n3", Inputs: []string{"n1", "n2"}, LogicalOp: LogicalOp{Op: OpJoin, LeftKey: "us_state", RightKey: "us_state", JoinKind: "cross"}},
		}, Output: "n3"}, "join kind"},
		{"count not sink", &LogicalPlan{Nodes: []PlanNode{
			{ID: "n1", LogicalOp: LogicalOp{Op: OpQueryDatabase}},
			{ID: "n2", Inputs: []string{"n1"}, LogicalOp: LogicalOp{Op: OpCount}},
			{ID: "n3", Inputs: []string{"n2"}, LogicalOp: LogicalOp{Op: OpLimit, K: 1}},
		}, Output: "n3"}, "must be the output"},
	}
	for _, c := range cases {
		err := Validate(c.plan, schema)
		if err == nil {
			t.Errorf("%s: should be rejected", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q should mention %q", c.name, err, c.want)
		}
	}
}

func TestValidateAggregatesAllErrors(t *testing.T) {
	// Three independent problems: a hallucinated filter field, an empty
	// llmFilter question, and a bogus aggregation — all must surface in
	// one Validate call.
	plan := &LogicalPlan{Ops: []LogicalOp{
		{Op: OpQueryDatabase, Filters: []FilterSpec{{Field: "hallucinated", Kind: "term", Value: 1}}},
		{Op: OpLLMFilter},
		{Op: OpGroupByAggregate, Key: "us_state", Agg: "median"},
	}}
	err := Validate(plan, testSchema())
	if err == nil {
		t.Fatal("plan should be rejected")
	}
	issues := Issues(err)
	if len(issues) != 3 {
		t.Fatalf("want 3 aggregated issues, got %d: %q", len(issues), issues)
	}
	for _, want := range []string{"hallucinated", "llmFilter requires a question", "unknown aggregation"} {
		found := false
		for _, is := range issues {
			if strings.Contains(is, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("issues missing %q: %q", want, issues)
		}
	}
	if Issues(nil) != nil {
		t.Error("Issues(nil) should be nil")
	}
}

func TestValidateAcceptsJoinProvenance(t *testing.T) {
	plan := joinFixturePlan()
	if err := Validate(plan, testSchema()); err != nil {
		t.Fatalf("join plan should validate: %v", err)
	}
	// Downstream of an inner join, right-side fields are visible under
	// the prefix namespace.
	project := &LogicalPlan{Nodes: []PlanNode{
		plan.Nodes[0], plan.Nodes[1], plan.Nodes[2],
		{ID: "n4", Inputs: []string{"n3"}, LogicalOp: LogicalOp{Op: OpProject,
			ProjectFields: []string{"accidentNumber", "right.aircraftDamage"}}},
	}, Output: "n4"}
	if err := Validate(project, testSchema()); err != nil {
		t.Errorf("prefixed right-side field should be in scope: %v", err)
	}
	// A semi join filters without enriching: the prefix namespace must
	// NOT leak downstream.
	semi := project.Clone()
	semi.node("n3").JoinKind = "semi"
	if err := Validate(semi, testSchema()); err == nil {
		t.Error("semi join must not expose right-side fields")
	}
}

func TestJoinPlanExecutesEndToEnd(t *testing.T) {
	ex, _ := executorFixture(t)
	res, err := ex.Run(context.Background(), joinFixturePlan())
	if err != nil {
		t.Fatal(err)
	}
	// KY = {A1, A2}; Substantial = {A1, A3}; equijoin on accidentNumber
	// keeps exactly A1.
	if res.Answer.Kind != AnswerNumber || res.Answer.Number != 1 {
		t.Errorf("join count = %+v", res.Answer)
	}
	if !strings.Contains(res.Compiled, "join") {
		t.Errorf("compiled pipeline should contain the join stage:\n%s", res.Compiled)
	}
	if res.Trace == nil {
		t.Error("join execution should carry a trace")
	}

	// Enrichment variant: project the namespaced right-side field.
	plan := joinFixturePlan()
	plan.Nodes[3] = PlanNode{ID: "n4", Inputs: []string{"n3"}, LogicalOp: LogicalOp{
		Op: OpProject, ProjectFields: []string{"accidentNumber", "right.aircraftDamage"}}}
	res2, err := ex.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Answer.List) != 1 || res2.Answer.List[0] != "A1 / Substantial" {
		t.Errorf("join projection = %v", res2.Answer.List)
	}

	// Anti-join variant: KY incidents NOT substantially damaged -> A2.
	anti := joinFixturePlan()
	anti.node("n3").JoinKind = "anti"
	res3, err := ex.Run(context.Background(), anti)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Answer.Number != 1 {
		t.Errorf("anti join count = %v", res3.Answer.Number)
	}
}

func TestRewriteOperatesOnDAGBranches(t *testing.T) {
	// basicFilter and duplicate llmFilter on separate join branches must
	// both be optimized; the join itself must survive untouched.
	plan := &LogicalPlan{Nodes: []PlanNode{
		{ID: "n1", LogicalOp: LogicalOp{Op: OpQueryDatabase}},
		{ID: "f1", Inputs: []string{"n1"}, LogicalOp: LogicalOp{Op: OpBasicFilter,
			Filters: []FilterSpec{{Field: "us_state", Kind: "term", Value: "KY"}}}},
		{ID: "n2", LogicalOp: LogicalOp{Op: OpQueryDatabase}},
		{ID: "x1", Inputs: []string{"n2"}, LogicalOp: LogicalOp{Op: OpLLMExtract,
			Fields: []llm.FieldSpec{{Name: "a", Type: "string"}}}},
		{ID: "x2", Inputs: []string{"x1"}, LogicalOp: LogicalOp{Op: OpLLMExtract,
			Fields: []llm.FieldSpec{{Name: "b", Type: "string"}}}},
		{ID: "j", Inputs: []string{"f1", "x2"}, LogicalOp: LogicalOp{Op: OpJoin,
			LeftKey: "accidentNumber", RightKey: "a"}},
		{ID: "c", Inputs: []string{"j"}, LogicalOp: LogicalOp{Op: OpCount}},
	}, Output: "c"}

	out := Rewrite(plan, DefaultRewrites())
	if len(plan.Nodes) != 7 {
		t.Error("Rewrite must not mutate its input")
	}
	if out.node("f1") != nil {
		t.Errorf("basicFilter should be pushed into its root: %s", out.String())
	}
	root := out.node("n1")
	if root == nil || len(root.Filters) != 1 {
		t.Errorf("pushed filter missing from root: %s", out.String())
	}
	extracts := 0
	for _, n := range out.Nodes {
		if n.Op == OpLLMExtract {
			extracts++
			if len(n.Fields) != 2 {
				t.Errorf("fused extract fields = %d", len(n.Fields))
			}
		}
	}
	if extracts != 1 {
		t.Errorf("extracts after fuse = %d: %s", extracts, out.String())
	}
	join := out.node("j")
	if join == nil || len(join.Inputs) != 2 || join.Inputs[0] != "n1" {
		t.Errorf("join edges not reconnected: %s", out.String())
	}
	if err := Validate(out, testSchema()); err != nil {
		t.Errorf("rewritten DAG should stay valid: %v", err)
	}
}

func TestRewriteDoesNotPushThroughSharedRoot(t *testing.T) {
	// A root feeding both a filtered branch and the join directly must
	// not absorb the branch's filter (it would change the other branch).
	plan := &LogicalPlan{Nodes: []PlanNode{
		{ID: "n1", LogicalOp: LogicalOp{Op: OpQueryDatabase}},
		{ID: "f1", Inputs: []string{"n1"}, LogicalOp: LogicalOp{Op: OpBasicFilter,
			Filters: []FilterSpec{{Field: "us_state", Kind: "term", Value: "KY"}}}},
		{ID: "j", Inputs: []string{"f1", "n1"}, LogicalOp: LogicalOp{Op: OpJoin,
			LeftKey: "accidentNumber", RightKey: "accidentNumber", JoinKind: "semi"}},
		{ID: "c", Inputs: []string{"j"}, LogicalOp: LogicalOp{Op: OpCount}},
	}, Output: "c"}
	out := Rewrite(plan, DefaultRewrites())
	if out.node("f1") == nil {
		t.Errorf("filter must not be pushed into a shared root: %s", out.String())
	}
	if len(out.node("n1").Filters) != 0 {
		t.Errorf("shared root must stay unfiltered: %s", out.String())
	}
}

func TestDAGStringRendersNodesAndEdges(t *testing.T) {
	s := joinFixturePlan().String()
	for _, want := range []string{"n1.", "n3. join(inner, accidentNumber=accidentNumber) <- n1, n2", "[output]"} {
		if !strings.Contains(s, want) {
			t.Errorf("DAG rendering missing %q:\n%s", want, s)
		}
	}
	// Chains keep the historical numbered rendering.
	chain := Chain(LogicalOp{Op: OpQueryDatabase}, LogicalOp{Op: OpCount})
	if !strings.HasPrefix(chain.String(), "1. queryDatabase") {
		t.Errorf("chain rendering changed: %s", chain.String())
	}
}

func TestServiceRunPlanReportsAllErrorsOverDAG(t *testing.T) {
	ex, _ := executorFixture(t)
	sim := llm.NewSim(1)
	sim.Register(PlannerSkill{})
	svc := &Service{Planner: NewPlanner(sim, testSchema()), Executor: ex}
	bad := joinFixturePlan()
	bad.node("n1").Filters = []FilterSpec{{Field: "nope", Kind: "fuzzy", Value: 1}}
	_, err := svc.RunPlan(context.Background(), "q", bad)
	if err == nil {
		t.Fatal("invalid DAG must be rejected")
	}
	if n := len(Issues(err)); n < 2 {
		t.Errorf("want both field and kind errors, got %d: %v", n, err)
	}
}

func TestInspectPlanDryRunsEdits(t *testing.T) {
	ex, _ := executorFixture(t)
	sim := llm.NewSim(1)
	sim.Register(PlannerSkill{})
	svc := &Service{Planner: NewPlanner(sim, testSchema()), Executor: ex}
	preview, err := svc.InspectPlan(joinFixturePlan())
	if err != nil {
		t.Fatal(err)
	}
	if preview.Rewritten == nil || !strings.Contains(preview.Compiled, "join") {
		t.Errorf("preview incomplete: %+v", preview)
	}
}

func TestPlanOnlySkipsExecution(t *testing.T) {
	ex, store := executorFixture(t)
	sim := llm.NewSim(1)
	sim.Register(PlannerSkill{})
	svc := &Service{Planner: NewPlanner(sim, InferSchema(store)), Executor: ex}
	preview, err := svc.PlanOnly(context.Background(), "How many incidents were there in Kentucky?")
	if err != nil {
		t.Fatal(err)
	}
	if preview.Plan == nil || preview.Rewritten == nil || preview.Compiled == "" {
		t.Fatalf("preview incomplete: %+v", preview)
	}
	if !strings.Contains(preview.Compiled, "queryDatabase") {
		t.Errorf("compiled rendering = %q", preview.Compiled)
	}
}

func TestDedupRespectsJoinBranches(t *testing.T) {
	q := "Does the document indicate birds?"
	mk := func(rightHasFilter, leftHasFilter bool) *LogicalPlan {
		nodes := []PlanNode{
			{ID: "l", LogicalOp: LogicalOp{Op: OpQueryDatabase}},
			{ID: "r", LogicalOp: LogicalOp{Op: OpQueryDatabase}},
		}
		leftIn, rightIn := "l", "r"
		if leftHasFilter {
			nodes = append(nodes, PlanNode{ID: "lf", Inputs: []string{"l"},
				LogicalOp: LogicalOp{Op: OpLLMFilter, Question: q}})
			leftIn = "lf"
		}
		if rightHasFilter {
			nodes = append(nodes, PlanNode{ID: "rf", Inputs: []string{"r"},
				LogicalOp: LogicalOp{Op: OpLLMFilter, Question: q}})
			rightIn = "rf"
		}
		nodes = append(nodes,
			PlanNode{ID: "j", Inputs: []string{leftIn, rightIn}, LogicalOp: LogicalOp{
				Op: OpJoin, LeftKey: "us_state", RightKey: "us_state", JoinKind: "semi"}},
			PlanNode{ID: "post", Inputs: []string{"j"}, LogicalOp: LogicalOp{Op: OpLLMFilter, Question: q}},
			PlanNode{ID: "c", Inputs: []string{"post"}, LogicalOp: LogicalOp{Op: OpCount}},
		)
		return &LogicalPlan{Nodes: nodes, Output: "c"}
	}

	// A duplicate on the right (build) branch filtered DIFFERENT
	// documents — the post-join filter must survive.
	out := Rewrite(mk(true, false), DefaultRewrites())
	if out.node("post") == nil {
		t.Errorf("post-join filter wrongly deduped against build branch:\n%s", out.String())
	}
	// A duplicate on the left (probe) lineage already constrained every
	// document flowing out of the join — the post-join filter is
	// redundant and should be dropped.
	out2 := Rewrite(mk(false, true), DefaultRewrites())
	if out2.node("post") != nil {
		t.Errorf("probe-lineage duplicate should be dropped:\n%s", out2.String())
	}
}

func TestIssuesUnwrapsPlannerWrapping(t *testing.T) {
	plan := &LogicalPlan{Ops: []LogicalOp{
		{Op: OpQueryDatabase, Filters: []FilterSpec{{Field: "hallucinated", Kind: "fuzzy", Value: 1}}},
		{Op: OpCount},
	}}
	verr := Validate(plan, testSchema())
	wrapped := fmt.Errorf("luna: plan for %q failed validation: %w", "q", verr)
	issues := Issues(wrapped)
	if len(issues) != 2 {
		t.Fatalf("wrapped aggregate should flatten to 2 issues, got %d: %q", len(issues), issues)
	}
	for _, is := range issues {
		if strings.Contains(is, "failed validation") || strings.Contains(is, "luna: invalid plan") {
			t.Errorf("issue should be the bare node message: %q", is)
		}
	}
}

func TestRunPlanAppliesRewritesLikeDryRun(t *testing.T) {
	ex, store := executorFixture(t)
	sim := llm.NewSim(1)
	sim.Register(PlannerSkill{})
	svc := &Service{Planner: NewPlanner(sim, InferSchema(store)), Executor: ex}
	// Two chained llmExtract nodes: the optimizer fuses them into one
	// LLM call per document.
	plan := Chain(
		LogicalOp{Op: OpQueryDatabase},
		LogicalOp{Op: OpLLMExtract, Fields: []llm.FieldSpec{{Name: "damaged_part", Type: "string"}}},
		LogicalOp{Op: OpLLMExtract, Fields: []llm.FieldSpec{{Name: "phase", Type: "string"}}},
		LogicalOp{Op: OpCount},
	)
	preview, err := svc.InspectPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.RunPlan(context.Background(), "q", plan)
	if err != nil {
		t.Fatal(err)
	}
	// The dry-run's compiled pipeline is the pipeline execution ran.
	if res.Compiled != preview.Compiled {
		t.Errorf("execution pipeline diverged from dry-run:\nrun: %s\npreview: %s", res.Compiled, preview.Compiled)
	}
	if n := strings.Count(res.Compiled, "llmExtract"); n != 1 {
		t.Errorf("extracts should fuse on the execute-by-plan path, got %d stages:\n%s", n, res.Compiled)
	}
	if res.Plan != plan {
		t.Error("Result.Plan must echo the submitted plan")
	}
	if len(res.Rewritten.Nodes) >= len(plan.Nodes) {
		t.Errorf("Result.Rewritten should be the optimized plan (%d vs %d nodes)",
			len(res.Rewritten.Nodes), len(plan.Nodes))
	}
}
