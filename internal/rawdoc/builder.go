package rawdoc

import (
	"fmt"
	"strings"

	"aryn/internal/docmodel"
)

// Standard fonts per layout class. The generator writes with these and the
// segmentation models read (noisy views of) them — the same information a
// vision model recovers from rendered glyphs.
var (
	FontTitle     = FontSpec{Size: 18, Bold: true}
	FontSection   = FontSpec{Size: 13, Bold: true}
	FontBody      = FontSpec{Size: 10}
	FontList      = FontSpec{Size: 10}
	FontCaption   = FontSpec{Size: 9, Italic: true}
	FontFootnote  = FontSpec{Size: 7.5}
	FontFormula   = FontSpec{Size: 11, Italic: true}
	FontFurniture = FontSpec{Size: 8.5}
	FontTableCell = FontSpec{Size: 9}
	FontTableHead = FontSpec{Size: 9, Bold: true}
)

const (
	furnitureTop    = 28.0 // y of page-header band
	furnitureBottom = 38.0 // distance of page-footer band from page bottom
	footnoteReserve = 60.0 // bottom strip reserved for footnotes
	blockGap        = 10.0 // vertical gap between blocks
	listIndent      = 16.0
	cellPadX        = 5.0
	cellPadY        = 3.5
)

// Builder lays out logical content into rawdoc pages: it wraps paragraphs
// into positioned runs, breaks pages, draws tables with rule lines, and
// records ground-truth regions as it goes.
type Builder struct {
	doc        *Doc
	page       *Page
	y          float64 // next block's top edge
	footnoteY  float64 // top of the already-placed footnote stack
	header     string
	footer     string
	footnoteIx int
}

// NewBuilder starts a document with the given id and title metadata. Call
// content methods in reading order, then Doc() to finish.
func NewBuilder(id, title string) *Builder {
	b := &Builder{doc: &Doc{ID: id, Title: title, Meta: map[string]string{}}}
	return b
}

// SetFurniture sets repeated page-header and page-footer text. Applies to
// pages started after the call.
func (b *Builder) SetFurniture(header, footer string) {
	b.header = header
	b.footer = footer
}

// Meta records producer metadata on the document.
func (b *Builder) Meta(key, value string) { b.doc.Meta[key] = value }

// Doc finalizes and returns the built document.
func (b *Builder) Doc() *Doc { return b.doc }

// CurrentPage returns the 1-based page number content is flowing onto.
func (b *Builder) CurrentPage() int {
	if b.page == nil {
		return 0
	}
	return b.page.Number
}

func (b *Builder) contentWidth() float64 { return PageWidth - 2*Margin }

// bottomLimit is the largest y a block may extend to on the current page.
func (b *Builder) bottomLimit() float64 {
	return PageHeight - Margin - footnoteReserve
}

func (b *Builder) newPage() {
	n := len(b.doc.Pages) + 1
	b.doc.Pages = append(b.doc.Pages, Page{Number: n, Width: PageWidth, Height: PageHeight})
	b.page = &b.doc.Pages[len(b.doc.Pages)-1]
	b.y = Margin
	b.footnoteY = PageHeight - Margin
	if b.header != "" {
		box := docmodel.BBox{X0: Margin, Y0: furnitureTop, X1: Margin + TextWidth(b.header, FontFurniture), Y1: furnitureTop + FontFurniture.Size}
		b.page.Runs = append(b.page.Runs, TextRun{Box: box, Text: b.header, Font: FontFurniture})
		b.doc.Regions = append(b.doc.Regions, Region{Page: n, Box: box, Type: docmodel.PageHeader, Text: b.header})
	}
	footText := b.footer
	if footText == "" {
		footText = fmt.Sprintf("Page %d", n)
	} else {
		footText = fmt.Sprintf("%s — Page %d", b.footer, n)
	}
	fy := PageHeight - furnitureBottom
	fbox := docmodel.BBox{X0: Margin, Y0: fy, X1: Margin + TextWidth(footText, FontFurniture), Y1: fy + FontFurniture.Size}
	b.page.Runs = append(b.page.Runs, TextRun{Box: fbox, Text: footText, Font: FontFurniture})
	b.doc.Regions = append(b.doc.Regions, Region{Page: n, Box: fbox, Type: docmodel.PageFooter, Text: footText})
}

// ensure guarantees at least h points of vertical space, breaking the page
// if necessary, and returns the top y to draw at.
func (b *Builder) ensure(h float64) float64 {
	if b.page == nil || b.y+h > b.bottomLimit() {
		b.newPage()
	}
	return b.y
}

// PageBreak forces subsequent content onto a fresh page.
func (b *Builder) PageBreak() { b.page = nil }

// wrap splits text into lines that fit the given width at font f. It breaks
// on spaces and hard-breaks pathological words.
func wrap(text string, width float64, f FontSpec) []string {
	words := strings.Fields(text)
	if len(words) == 0 {
		return nil
	}
	maxChars := int(width / CharWidth(f))
	if maxChars < 1 {
		maxChars = 1
	}
	var lines []string
	cur := ""
	flush := func() {
		if cur != "" {
			lines = append(lines, cur)
			cur = ""
		}
	}
	for _, w := range words {
		for len([]rune(w)) > maxChars { // hard-break oversized tokens
			flush()
			r := []rune(w)
			lines = append(lines, string(r[:maxChars]))
			w = string(r[maxChars:])
		}
		switch {
		case cur == "":
			cur = w
		case len([]rune(cur))+1+len([]rune(w)) <= maxChars:
			cur += " " + w
		default:
			flush()
			cur = w
		}
	}
	flush()
	return lines
}

// placeBlock wraps text at the given indent/width, emits runs, and returns
// the union box. It assumes space was ensured by the caller.
func (b *Builder) placeBlock(text string, f FontSpec, indent, width float64) docmodel.BBox {
	lines := wrap(text, width, f)
	lh := LineHeight(f)
	var union docmodel.BBox
	for i, line := range lines {
		y := b.y + float64(i)*lh
		box := docmodel.BBox{X0: Margin + indent, Y0: y, X1: Margin + indent + TextWidth(line, f), Y1: y + f.Size}
		b.page.Runs = append(b.page.Runs, TextRun{Box: box, Text: line, Font: f})
		union = union.Union(box)
	}
	b.y += float64(len(lines))*lh + blockGap
	return union
}

// blockHeight estimates the height a block of text will occupy.
func blockHeight(text string, f FontSpec, width float64) float64 {
	n := len(wrap(text, width, f))
	return float64(n) * LineHeight(f)
}

// addTextRegion lays out a text block and records its ground truth region.
func (b *Builder) addTextRegion(text string, f FontSpec, t docmodel.ElementType, indent float64) {
	if strings.TrimSpace(text) == "" {
		return
	}
	width := b.contentWidth() - indent
	h := blockHeight(text, f, width)
	b.ensure(h)
	box := b.placeBlock(text, f, indent, width)
	b.doc.Regions = append(b.doc.Regions, Region{Page: b.page.Number, Box: box, Type: t, Text: text})
}

// AddTitle places a document title block.
func (b *Builder) AddTitle(text string) { b.addTextRegion(text, FontTitle, docmodel.Title, 0) }

// AddSectionHeader places a section heading.
func (b *Builder) AddSectionHeader(text string) {
	b.addTextRegion(text, FontSection, docmodel.SectionHeader, 0)
}

// AddParagraph places a body-text paragraph.
func (b *Builder) AddParagraph(text string) { b.addTextRegion(text, FontBody, docmodel.Text, 0) }

// AddListItem places one bulleted list item.
func (b *Builder) AddListItem(text string) {
	b.addTextRegion("• "+text, FontList, docmodel.ListItem, listIndent)
}

// AddCaption places an italic caption line (usually after an image/table).
func (b *Builder) AddCaption(text string) {
	b.addTextRegion(text, FontCaption, docmodel.Caption, 24)
}

// AddFormula places a centered formula-style line.
func (b *Builder) AddFormula(text string) {
	f := FontFormula
	w := TextWidth(text, f)
	b.ensure(LineHeight(f))
	x0 := Margin + (b.contentWidth()-w)/2
	if x0 < Margin {
		x0 = Margin
	}
	box := docmodel.BBox{X0: x0, Y0: b.y, X1: x0 + w, Y1: b.y + f.Size}
	b.page.Runs = append(b.page.Runs, TextRun{Box: box, Text: text, Font: f})
	b.doc.Regions = append(b.doc.Regions, Region{Page: b.page.Number, Box: box, Type: docmodel.Formula, Text: text})
	b.y += LineHeight(f) + blockGap
}

// AddFootnote places a footnote in the reserved strip at the bottom of the
// current page (or a fresh page if the strip is full).
func (b *Builder) AddFootnote(text string) {
	b.footnoteIx++
	text = fmt.Sprintf("%d. %s", b.footnoteIx, text)
	f := FontFootnote
	width := b.contentWidth()
	h := blockHeight(text, f, width)
	if b.page == nil {
		b.newPage()
	}
	top := b.footnoteY - h
	if top < b.bottomLimit() { // strip full: overflow to a new page's strip
		b.newPage()
		top = b.footnoteY - h
	}
	lines := wrap(text, width, f)
	lh := LineHeight(f)
	var union docmodel.BBox
	for i, line := range lines {
		y := top + float64(i)*lh
		box := docmodel.BBox{X0: Margin, Y0: y, X1: Margin + TextWidth(line, f), Y1: y + f.Size}
		b.page.Runs = append(b.page.Runs, TextRun{Box: box, Text: line, Font: f})
		union = union.Union(box)
	}
	b.footnoteY = top - 4
	b.doc.Regions = append(b.doc.Regions, Region{Page: b.page.Number, Box: union, Type: docmodel.Footnote, Text: text})
}

// AddImage places a centered image blob of the given natural pixel size,
// scaled to at most the content width and 260pt of height.
func (b *Builder) AddImage(desc, format string, pxW, pxH int) {
	w, h := float64(pxW)/2, float64(pxH)/2 // 2px per point nominal scale
	if maxW := b.contentWidth(); w > maxW {
		h *= maxW / w
		w = maxW
	}
	if maxH := 260.0; h > maxH {
		w *= maxH / h
		h = maxH
	}
	b.ensure(h)
	x0 := Margin + (b.contentWidth()-w)/2
	box := docmodel.BBox{X0: x0, Y0: b.y, X1: x0 + w, Y1: b.y + h}
	img := ImageBlob{Box: box, Format: format, Width: pxW, Height: pxH, Desc: desc}
	b.page.Images = append(b.page.Images, img)
	b.doc.Regions = append(b.doc.Regions, Region{Page: b.page.Number, Box: box, Type: docmodel.Picture, Image: &img})
	b.y += h + blockGap
}

// AddTable lays out a grid of cells with border rules. If headerRow is true
// the first row is styled and marked as a header. Tables too tall for the
// remaining space start on a fresh page; rows beyond a full page are split
// into a continuation table region.
func (b *Builder) AddTable(rows [][]string, headerRow bool) {
	if len(rows) == 0 {
		return
	}
	nCols := 0
	for _, r := range rows {
		if len(r) > nCols {
			nCols = len(r)
		}
	}
	if nCols == 0 {
		return
	}
	// Column widths proportional to max cell text, scaled to fit.
	widths := make([]float64, nCols)
	for _, r := range rows {
		for c, cell := range r {
			w := TextWidth(cell, FontTableCell) + 2*cellPadX
			if w > widths[c] {
				widths[c] = w
			}
		}
	}
	total := 0.0
	for _, w := range widths {
		total += w
	}
	if total > b.contentWidth() {
		scale := b.contentWidth() / total
		for i := range widths {
			widths[i] *= scale
		}
		total = b.contentWidth()
	}
	rowH := LineHeight(FontTableCell) + 2*cellPadY

	remaining := rows
	first := true
	for len(remaining) > 0 {
		avail := b.bottomLimit() - b.ensure(rowH*2) // at least two rows
		fit := int(avail / rowH)
		if fit < 1 {
			fit = 1
		}
		chunk := remaining
		if len(chunk) > fit {
			chunk = chunk[:fit]
		}
		remaining = remaining[len(chunk):]
		b.placeTableChunk(chunk, widths, total, rowH, headerRow && first)
		first = false
		if len(remaining) > 0 {
			b.PageBreak()
		}
	}
}

func (b *Builder) placeTableChunk(rows [][]string, widths []float64, total, rowH float64, headerRow bool) {
	nCols := len(widths)
	top := b.y
	left := Margin
	td := &docmodel.TableData{NumRows: len(rows), NumCols: nCols}
	// Horizontal rules.
	for r := 0; r <= len(rows); r++ {
		y := top + float64(r)*rowH
		b.page.Rules = append(b.page.Rules, Rule{Box: docmodel.BBox{X0: left, Y0: y, X1: left + total, Y1: y + 0.7}})
	}
	// Vertical rules.
	x := left
	for c := 0; c <= nCols; c++ {
		b.page.Rules = append(b.page.Rules, Rule{Box: docmodel.BBox{X0: x, Y0: top, X1: x + 0.7, Y1: top + float64(len(rows))*rowH}})
		if c < nCols {
			x += widths[c]
		}
	}
	// Cells.
	for r, row := range rows {
		x := left
		for c := 0; c < nCols; c++ {
			text := ""
			if c < len(row) {
				text = row[c]
			}
			font := FontTableCell
			header := headerRow && r == 0
			if header {
				font = FontTableHead
			}
			cellBox := docmodel.BBox{X0: x, Y0: top + float64(r)*rowH, X1: x + widths[c], Y1: top + float64(r+1)*rowH}
			if text != "" {
				// Truncate text that overflows its column.
				maxChars := int((widths[c] - 2*cellPadX) / CharWidth(font))
				if maxChars < 1 {
					maxChars = 1
				}
				shown := text
				if len([]rune(shown)) > maxChars {
					shown = string([]rune(shown)[:maxChars])
				}
				runBox := docmodel.BBox{
					X0: x + cellPadX, Y0: cellBox.Y0 + cellPadY,
					X1: x + cellPadX + TextWidth(shown, font), Y1: cellBox.Y0 + cellPadY + font.Size,
				}
				b.page.Runs = append(b.page.Runs, TextRun{Box: runBox, Text: shown, Font: font})
			}
			td.Cells = append(td.Cells, docmodel.TableCell{Row: r, Col: c, Text: text, Header: header, Box: cellBox})
			x += widths[c]
		}
	}
	tableBox := docmodel.BBox{X0: left, Y0: top, X1: left + total, Y1: top + float64(len(rows))*rowH}
	b.doc.Regions = append(b.doc.Regions, Region{Page: b.page.Number, Box: tableBox, Type: docmodel.Table, Table: td})
	b.y = tableBox.Y1 + blockGap
}
