// Package rawdoc defines the synthetic raw-document format this
// reproduction uses in place of PDF/DOCX inputs. A rawdoc carries what a
// rendered page carries: positioned text runs with font metrics, rule
// lines (table borders), and image blobs. Crucially it also carries
// ground-truth layout regions — the labels a human DocLayNet annotator
// would draw — which are used only for evaluation, never shown to the
// segmentation models.
//
// The substitution preserves the paper's pipeline shape: DocParse (§4)
// renders documents to images precisely so it can work from page geometry
// (position, size, font) rather than file-format internals; rawdoc hands
// the vision stage that same geometric signal directly.
//
// Paper counterpart: the PDF/DOCX inputs DocParse partitions (§4).
//
// Concurrency: encode/decode are pure functions; decoded documents are
// plain data owned by the caller.
package rawdoc
