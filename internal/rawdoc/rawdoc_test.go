package rawdoc

import (
	"strings"
	"testing"
	"testing/quick"

	"aryn/internal/docmodel"
)

func buildSample() *Doc {
	b := NewBuilder("test-1", "Test Report")
	b.SetFurniture("National Transportation Safety Board", "CEN24LA001")
	b.AddTitle("Aviation Investigation Report")
	b.AddSectionHeader("Analysis")
	b.AddParagraph(strings.Repeat("The pilot reported that during cruise flight the engine lost partial power. ", 8))
	b.AddListItem("Fuel exhaustion was ruled out")
	b.AddListItem("Carburetor icing conditions were present")
	b.AddTable([][]string{
		{"Field", "Value"},
		{"Aircraft", "Cessna 172"},
		{"Registration", "N12345"},
	}, true)
	b.AddCaption("Table 1: Aircraft details")
	b.AddImage("photograph of wreckage in a field", "png", 800, 600)
	b.AddCaption("Figure 1: Main wreckage")
	b.AddFormula("P(loss) = f(icing, fuel)")
	b.AddFootnote("Visual meteorological conditions prevailed.")
	return b.Doc()
}

func TestBuilderProducesAllClasses(t *testing.T) {
	d := buildSample()
	byType := map[docmodel.ElementType]int{}
	for _, r := range d.Regions {
		byType[r.Type]++
	}
	for _, et := range []docmodel.ElementType{
		docmodel.Title, docmodel.SectionHeader, docmodel.Text, docmodel.ListItem,
		docmodel.Table, docmodel.Caption, docmodel.Picture, docmodel.Formula,
		docmodel.Footnote, docmodel.PageHeader, docmodel.PageFooter,
	} {
		if byType[et] == 0 {
			t.Errorf("no ground-truth region of type %v", et)
		}
	}
}

func TestRegionsWithinPageBounds(t *testing.T) {
	d := buildSample()
	for _, r := range d.Regions {
		if r.Box.X0 < 0 || r.Box.Y0 < 0 || r.Box.X1 > PageWidth+1e-6 || r.Box.Y1 > PageHeight+1e-6 {
			t.Errorf("region %v out of page bounds: %+v", r.Type, r.Box)
		}
		if r.Box.Empty() {
			t.Errorf("region %v has empty box", r.Type)
		}
		if r.Page < 1 || r.Page > len(d.Pages) {
			t.Errorf("region %v on invalid page %d", r.Type, r.Page)
		}
	}
}

func TestRunsBelongToSomeRegion(t *testing.T) {
	// Every body text run should be covered by a ground-truth region; this is
	// the invariant the segmentation evaluation depends on.
	d := buildSample()
	for pi, p := range d.Pages {
		regions := d.PageRegions(pi + 1)
		for _, run := range p.Runs {
			cx, cy := run.Box.CenterX(), run.Box.CenterY()
			found := false
			for _, r := range regions {
				if r.Box.Contains(cx, cy) || r.Box.IoU(run.Box) > 0 {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("page %d run %q not covered by any region", pi+1, run.Text)
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := buildSample()
	blob, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != d.ID || len(got.Pages) != len(d.Pages) || len(got.Regions) != len(d.Regions) {
		t.Errorf("round trip mismatch: %s vs %s", got.Stats(), d.Stats())
	}
	if len(got.Pages[0].Runs) != len(d.Pages[0].Runs) {
		t.Error("runs lost in round trip")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not a rawdoc")); err == nil {
		t.Error("Decode should reject foreign bytes")
	}
	if _, err := Decode(append([]byte("RAWDOC1\n"), 0xff, 0x00)); err == nil {
		t.Error("Decode should reject corrupt gzip")
	}
}

func TestWrap(t *testing.T) {
	lines := wrap("alpha beta gamma delta", 60, FontBody) // 60pt / 5pt per char = 12 chars
	if len(lines) < 2 {
		t.Errorf("expected wrapping, got %v", lines)
	}
	for _, l := range lines {
		if len(l) > 12 {
			t.Errorf("line %q exceeds 12 chars", l)
		}
	}
	if got := wrap("", 100, FontBody); got != nil {
		t.Errorf("wrap empty = %v", got)
	}
	// Pathological long token hard-breaks rather than overflowing.
	long := strings.Repeat("x", 50)
	for _, l := range wrap(long, 60, FontBody) {
		if len(l) > 12 {
			t.Errorf("hard break failed: %q", l)
		}
	}
}

func TestWrapPreservesAllWords(t *testing.T) {
	f := func(words []string) bool {
		var clean []string
		for _, w := range words {
			w = strings.Join(strings.Fields(w), "")
			if w != "" {
				clean = append(clean, w)
			}
		}
		text := strings.Join(clean, " ")
		lines := wrap(text, 200, FontBody)
		rejoined := strings.Join(lines, " ")
		return strings.Join(strings.Fields(rejoined), "") == strings.Join(clean, "")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTablePagination(t *testing.T) {
	b := NewBuilder("big", "")
	rows := make([][]string, 80) // far more rows than fit one page
	for i := range rows {
		rows[i] = []string{"key", "value"}
	}
	b.AddTable(rows, true)
	d := b.Doc()
	if len(d.Pages) < 2 {
		t.Fatalf("80-row table should span pages, got %d", len(d.Pages))
	}
	totalRows := 0
	for _, r := range d.Regions {
		if r.Type == docmodel.Table {
			totalRows += r.Table.NumRows
		}
	}
	if totalRows != 80 {
		t.Errorf("rows split across chunks = %d, want 80", totalRows)
	}
}

func TestMultiPageFlow(t *testing.T) {
	b := NewBuilder("long", "")
	b.SetFurniture("HDR", "FTR")
	for i := 0; i < 60; i++ {
		b.AddParagraph(strings.Repeat("sentence content here. ", 10))
	}
	d := b.Doc()
	if len(d.Pages) < 3 {
		t.Fatalf("expected multi-page doc, got %d pages", len(d.Pages))
	}
	// Furniture repeats on every page.
	for i := range d.Pages {
		regions := d.PageRegions(i + 1)
		hasHeader, hasFooter := false, false
		for _, r := range regions {
			if r.Type == docmodel.PageHeader {
				hasHeader = true
			}
			if r.Type == docmodel.PageFooter {
				hasFooter = true
			}
		}
		if !hasHeader || !hasFooter {
			t.Errorf("page %d missing furniture (header=%v footer=%v)", i+1, hasHeader, hasFooter)
		}
	}
}

func TestCharWidthMonotonic(t *testing.T) {
	if CharWidth(FontSpec{Size: 10, Bold: true}) <= CharWidth(FontSpec{Size: 10}) {
		t.Error("bold should be wider")
	}
	if TextWidth("abcd", FontBody) != 4*CharWidth(FontBody) {
		t.Error("TextWidth should be len*CharWidth")
	}
}
