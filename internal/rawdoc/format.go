package rawdoc

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"

	"aryn/internal/docmodel"
)

// Standard US-Letter page geometry in points.
const (
	PageWidth  = 612.0
	PageHeight = 792.0
	Margin     = 54.0
)

// FontSpec describes the typeface of a text run. The segmentation models
// exploit size/weight as classification features, exactly as a vision model
// exploits rendered glyph size.
type FontSpec struct {
	Size   float64 `json:"size"`
	Bold   bool    `json:"bold,omitempty"`
	Italic bool    `json:"italic,omitempty"`
}

// TextRun is one positioned line of text on a page (a PDF "Tj" analogue).
type TextRun struct {
	Box  docmodel.BBox `json:"box"`
	Text string        `json:"text"`
	Font FontSpec      `json:"font"`
}

// Rule is a thin drawn line (table border, separator).
type Rule struct {
	Box docmodel.BBox `json:"box"`
}

// ImageBlob is a placed raster image. Desc is the latent content
// description used by the image-summary model simulation (a real system
// would run a multi-modal LLM over the pixels).
type ImageBlob struct {
	Box    docmodel.BBox `json:"box"`
	Format string        `json:"format"`
	Width  int           `json:"width"`
	Height int           `json:"height"`
	Desc   string        `json:"desc,omitempty"`
}

// Page is one rendered page of a document.
type Page struct {
	Number int         `json:"number"`
	Width  float64     `json:"width"`
	Height float64     `json:"height"`
	Runs   []TextRun   `json:"runs,omitempty"`
	Rules  []Rule      `json:"rules,omitempty"`
	Images []ImageBlob `json:"images,omitempty"`
}

// Region is a ground-truth labeled layout region (evaluation only).
type Region struct {
	Page  int                  `json:"page"`
	Box   docmodel.BBox        `json:"box"`
	Type  docmodel.ElementType `json:"type"`
	Text  string               `json:"text,omitempty"`
	Table *docmodel.TableData  `json:"table,omitempty"`
	Image *ImageBlob           `json:"image,omitempty"`
}

// Doc is a complete raw document: pages of geometry plus held-out ground
// truth.
type Doc struct {
	ID      string            `json:"id"`
	Title   string            `json:"title,omitempty"`
	Meta    map[string]string `json:"meta,omitempty"`
	Pages   []Page            `json:"pages"`
	Regions []Region          `json:"regions,omitempty"`
}

// magic prefixes encoded rawdoc blobs so Decode can reject foreign bytes.
var magic = []byte("RAWDOC1\n")

// Encode serializes the document to a compressed binary blob — the bytes a
// DocSet carries in Document.Binary before partitioning.
func (d *Doc) Encode() ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(magic)
	zw := gzip.NewWriter(&buf)
	if err := json.NewEncoder(zw).Encode(d); err != nil {
		return nil, fmt.Errorf("rawdoc: encode %s: %w", d.ID, err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("rawdoc: encode %s: %w", d.ID, err)
	}
	return buf.Bytes(), nil
}

// Decode parses a blob produced by Encode.
func Decode(blob []byte) (*Doc, error) {
	if !bytes.HasPrefix(blob, magic) {
		return nil, fmt.Errorf("rawdoc: not a rawdoc blob (missing magic)")
	}
	zr, err := gzip.NewReader(bytes.NewReader(blob[len(magic):]))
	if err != nil {
		return nil, fmt.Errorf("rawdoc: decode: %w", err)
	}
	defer zr.Close()
	var d Doc
	if err := json.NewDecoder(zr).Decode(&d); err != nil {
		return nil, fmt.Errorf("rawdoc: decode: %w", err)
	}
	if _, err := io.Copy(io.Discard, zr); err != nil {
		return nil, fmt.Errorf("rawdoc: decode trailer: %w", err)
	}
	return &d, nil
}

// PageRegions returns the ground-truth regions on the given 1-based page.
func (d *Doc) PageRegions(page int) []Region {
	var out []Region
	for _, r := range d.Regions {
		if r.Page == page {
			out = append(out, r)
		}
	}
	return out
}

// Stats summarizes a document for logging.
func (d *Doc) Stats() string {
	runs := 0
	for _, p := range d.Pages {
		runs += len(p.Runs)
	}
	return fmt.Sprintf("doc %s: %d pages, %d runs, %d gt-regions", d.ID, len(d.Pages), runs, len(d.Regions))
}

// CharWidth approximates the rendered advance width of one character at the
// given font size. The layout engine and the OCR/text extractors share this
// metric so geometry round-trips.
func CharWidth(f FontSpec) float64 {
	w := 0.50 * f.Size
	if f.Bold {
		w *= 1.06
	}
	return w
}

// LineHeight is the vertical advance for a run at the given font size.
func LineHeight(f FontSpec) float64 { return 1.35 * f.Size }

// TextWidth approximates the rendered width of s at font f.
func TextWidth(s string, f FontSpec) float64 {
	return float64(len([]rune(s))) * CharWidth(f)
}
