#!/usr/bin/env bash
# Server smoke test: boot arynd against the simulated LLM, run a health
# check plus ingest→query→chat and plan→edit→re-execute round-trips
# (§6.2 inspect→edit→re-run over HTTP), and fail on any non-200 — plus a
# regression that invalid plans come back as 400 with a structured
# {"error": {"code", "message", "details"}} envelope, an SSE
# streamed-query round-trip, the /v1
# deprecation headers, and an async ingest job submitted and polled to
# completion (docs/streaming-api.md). CI runs this on every push
# (make smoke); it is the end-to-end proof that the serving layer,
# admission gate, plan API, and session plumbing hold together outside
# the Go test harness.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="${ARYND_ADDR:-127.0.0.1:8199}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/arynd"
LOG="$(mktemp)"

cleanup() {
  status=$?
  if [ -n "${ARYND_PID:-}" ] && kill -0 "$ARYND_PID" 2>/dev/null; then
    kill "$ARYND_PID" 2>/dev/null || true
    wait "$ARYND_PID" 2>/dev/null || true
  fi
  if [ "$status" -ne 0 ]; then
    echo "--- arynd log ---" >&2
    cat "$LOG" >&2 || true
  fi
  rm -f "$LOG"
  rm -rf "$(dirname "$BIN")"
  exit "$status"
}
trap cleanup EXIT

echo "smoke: building arynd..."
go build -o "$BIN" ./cmd/arynd

echo "smoke: starting arynd on $ADDR (empty index)..."
"$BIN" -addr "$ADDR" -docs 0 >"$LOG" 2>&1 &
ARYND_PID=$!

# Wait for the health endpoint (up to ~10s).
for i in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$ARYND_PID" 2>/dev/null; then
    echo "smoke: arynd died during startup" >&2
    exit 1
  fi
  sleep 0.1
done
curl -fsS "$BASE/healthz" | grep -q '"status": "ok"' || {
  echo "smoke: healthz did not report ok" >&2; exit 1; }
echo "smoke: healthz ok"

echo "smoke: ingesting 16 synthetic documents..."
INGEST=$(curl -fsS -X POST "$BASE/ingest" -d '{"docs":16,"seed":42}')
echo "$INGEST" | grep -q '"documents": 16' || {
  echo "smoke: ingest did not index 16 documents: $INGEST" >&2; exit 1; }

echo "smoke: one-shot query..."
QUERY=$(curl -fsS -X POST "$BASE/query" -d '{"question":"How many incidents were there?"}')
echo "$QUERY" | grep -q '"answer": "16"' || {
  echo "smoke: query answer should be 16: $QUERY" >&2; exit 1; }

echo "smoke: plan without executing..."
PLAN=$(curl -fsS -X POST "$BASE/plan" -d '{"question":"How many incidents were there?"}')
echo "$PLAN" | grep -q '"nodes"' || {
  echo "smoke: /plan should return DAG plan JSON: $PLAN" >&2; exit 1; }
echo "$PLAN" | grep -q '"compiled"' || {
  echo "smoke: /plan should return the compiled pipeline: $PLAN" >&2; exit 1; }

echo "smoke: execute an edited plan..."
# A hand-edited DAG: two scan roots self-joined on accident number, then
# counted — the join keeps each of the 16 documents exactly once.
EDITED='{"nodes":[
  {"id":"n1","op":"queryDatabase"},
  {"id":"n2","op":"queryDatabase"},
  {"id":"n3","op":"join","inputs":["n1","n2"],"left_key":"accidentNumber","right_key":"accidentNumber","join_kind":"semi"},
  {"id":"n4","op":"count","inputs":["n3"]}],"output":"n4"}'
REPLAY=$(curl -fsS -X POST "$BASE/query" -d "{\"plan\":$EDITED}")
echo "$REPLAY" | grep -q '"answer": "16"' || {
  echo "smoke: edited join plan should count 16: $REPLAY" >&2; exit 1; }

echo "smoke: explain analyze..."
ANALYZE=$(curl -fsS -X POST "$BASE/plan" -d "{\"plan\":$EDITED,\"analyze\":true}")
echo "$ANALYZE" | grep -q '"executed"' || {
  echo "smoke: analyze should return the executed plan: $ANALYZE" >&2; exit 1; }
echo "$ANALYZE" | grep -q '"runtime"' || {
  echo "smoke: executed plan should carry per-node runtime: $ANALYZE" >&2; exit 1; }
echo "$ANALYZE" | grep -q '"answer"' && {
  echo "smoke: analyze must not return an answer payload: $ANALYZE" >&2; exit 1; }

echo "smoke: include_plan returns executed runtime..."
ANALYZED_QUERY=$(curl -fsS -X POST "$BASE/query" -d '{"question":"How many incidents were there?","include_plan":true}')
echo "$ANALYZED_QUERY" | grep -q '"executed"' || {
  echo "smoke: include_plan should carry the executed plan: $ANALYZED_QUERY" >&2; exit 1; }

echo "smoke: invalid plan returns 400 with structured errors..."
BADPLAN='{"plan":{"nodes":[{"id":"n1","op":"queryDatabase","filters":[{"field":"hallucinated","kind":"fuzzy","value":1}]},{"id":"n2","op":"llmFilter","inputs":["n1"]},{"id":"n3","op":"count","inputs":["n2"]}],"output":"n3"}}'
BADSTATUS=$(curl -sS -o /tmp/smoke_bad_plan.$$ -w '%{http_code}' -X POST "$BASE/query" -d "$BADPLAN")
BAD=$(cat /tmp/smoke_bad_plan.$$; rm -f /tmp/smoke_bad_plan.$$)
[ "$BADSTATUS" = "400" ] || {
  echo "smoke: invalid plan should be 400, got $BADSTATUS: $BAD" >&2; exit 1; }
echo "$BAD" | grep -q '"code": "invalid_plan"' || {
  echo "smoke: 400 should carry the error envelope with code invalid_plan: $BAD" >&2; exit 1; }
echo "$BAD" | grep -q '"details"' || {
  echo "smoke: 400 envelope should carry a structured details array: $BAD" >&2; exit 1; }
echo "$BAD" | grep -q 'hallucinated' && echo "$BAD" | grep -q 'llmFilter requires a question' || {
  echo "smoke: details array should list every node failure: $BAD" >&2; exit 1; }

echo "smoke: chat session round-trip..."
CHAT1=$(curl -fsS -X POST "$BASE/chat" -d '{"question":"How many incidents involved substantial damage?"}')
SESSION=$(echo "$CHAT1" | sed -n 's/.*"session_id": "\([^"]*\)".*/\1/p')
[ -n "$SESSION" ] || { echo "smoke: chat returned no session_id: $CHAT1" >&2; exit 1; }
CHAT2=$(curl -fsS -X POST "$BASE/chat" -d "{\"session_id\":\"$SESSION\",\"question\":\"what about destroyed aircraft?\"}")
echo "$CHAT2" | grep -q '"turn": 2' || {
  echo "smoke: follow-up should be turn 2: $CHAT2" >&2; exit 1; }

echo "smoke: legacy route answers with deprecation headers..."
HEADERS=$(curl -fsS -D - -o /dev/null "$BASE/healthz")
echo "$HEADERS" | grep -qi '^deprecation: true' || {
  echo "smoke: legacy /healthz should carry Deprecation: true: $HEADERS" >&2; exit 1; }
echo "$HEADERS" | grep -qi 'rel="successor-version"' || {
  echo "smoke: legacy /healthz should Link its /v1 successor: $HEADERS" >&2; exit 1; }
V1HEADERS=$(curl -fsS -D - -o /dev/null "$BASE/v1/healthz")
echo "$V1HEADERS" | grep -qi '^deprecation' && {
  echo "smoke: canonical /v1 route must not be deprecated: $V1HEADERS" >&2; exit 1; }

echo "smoke: streamed query over SSE..."
STREAM=$(curl -fsSN -X POST "$BASE/v1/query" -H 'Accept: text/event-stream' \
  -d '{"question":"How many incidents were there?"}')
# here-strings, not pipes: grep -q quitting early would SIGPIPE echo
# under pipefail even on a match.
grep -q '^event: progress' <<<"$STREAM" || {
  echo "smoke: stream should carry a progress event: $STREAM" >&2; exit 1; }
grep -q '^event: result' <<<"$STREAM" || {
  echo "smoke: stream should end in a result event: $STREAM" >&2; exit 1; }
grep -q '"answer":"16"' <<<"$(tail -4 <<<"$STREAM")" || {
  echo "smoke: streamed terminal result should answer 16: $STREAM" >&2; exit 1; }

echo "smoke: async ingest job submitted, polled to done..."
JOBSTATUS=$(curl -sS -o /tmp/smoke_job.$$ -w '%{http_code}' -X POST "$BASE/v1/ingest" -d '{"docs":8,"seed":99}')
JOB=$(cat /tmp/smoke_job.$$; rm -f /tmp/smoke_job.$$)
[ "$JOBSTATUS" = "202" ] || {
  echo "smoke: POST /v1/ingest should answer 202, got $JOBSTATUS: $JOB" >&2; exit 1; }
LOCATION=$(echo "$JOB" | sed -n 's/.*"location": "\([^"]*\)".*/\1/p')
[ -n "$LOCATION" ] || { echo "smoke: 202 returned no job location: $JOB" >&2; exit 1; }
JOBSTATE=""
for i in $(seq 1 300); do
  SNAP=$(curl -fsS "$BASE$LOCATION")
  JOBSTATE=$(echo "$SNAP" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
  [ "$JOBSTATE" = "done" ] && break
  [ "$JOBSTATE" = "failed" ] && { echo "smoke: ingest job failed: $SNAP" >&2; exit 1; }
  sleep 0.1
done
[ "$JOBSTATE" = "done" ] || { echo "smoke: ingest job still $JOBSTATE after 30s" >&2; exit 1; }
# result.documents is the store total after the prepare swap; synthetic
# corpora share positional accident numbers, so the job's 8 docs
# overwrite 8 of the 16 already ingested and the total stays 16.
grep -q '"documents": 16' <<<"$SNAP" || {
  echo "smoke: done job should report the 16-doc store total: $SNAP" >&2; exit 1; }
QUERY2=$(curl -fsS -X POST "$BASE/v1/query" -d '{"question":"How many incidents were there?"}')
echo "$QUERY2" | grep -q '"answer": "16"' || {
  echo "smoke: post-job corpus should still count 16: $QUERY2" >&2; exit 1; }

echo "smoke: stats snapshot..."
STATS=$(curl -fsS "$BASE/stats")
echo "$STATS" | grep -q '"ready": true' || {
  echo "smoke: stats should report ready: $STATS" >&2; exit 1; }
echo "$STATS" | grep -q '"admitted"' || {
  echo "smoke: stats should expose admission counters: $STATS" >&2; exit 1; }

echo "smoke: graceful shutdown..."
kill "$ARYND_PID"
wait "$ARYND_PID" 2>/dev/null || true
unset ARYND_PID

echo "smoke: OK"
