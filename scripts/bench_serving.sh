#!/usr/bin/env bash
# Serving-load benchmark driver, run by `make bench-serving` and the CI
# bench-serving job: build arynd + arynload, boot arynd with a synthetic
# corpus, drive the standard scenario mixes at a target rate, and
# write/merge the per-mix latency/shed/cache report into
# BENCH_serving.json (methodology: docs/benchmarks.md; SLO targets:
# docs/serving-slos.md).
#
# Knobs (environment):
#   ARYNLOAD_ADDR      host:port to serve on   (default 127.0.0.1:8246)
#   BENCH_SERVING_DOCS       corpus size       (default 48)
#   BENCH_SERVING_QPS        per-mix rate      (default 25)
#   BENCH_SERVING_DURATION   per-mix duration  (default 8s)
#   BENCH_SERVING_MIXES      mix selection     (default all)
#   BENCH_SERVING_OUT        output JSON       (default BENCH_serving.json)
#   BENCH_SERVING_LABEL      results label     (default after)
#   BENCH_SERVING_SLO        enforce SLOs      (default true)
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="${ARYNLOAD_ADDR:-127.0.0.1:8246}"
BASE="http://$ADDR"
DOCS="${BENCH_SERVING_DOCS:-48}"
QPS="${BENCH_SERVING_QPS:-25}"
DURATION="${BENCH_SERVING_DURATION:-8s}"
MIXES="${BENCH_SERVING_MIXES:-all}"
OUT="${BENCH_SERVING_OUT:-BENCH_serving.json}"
LABEL="${BENCH_SERVING_LABEL:-after}"
SLO="${BENCH_SERVING_SLO:-true}"

BINDIR="$(mktemp -d)"
LOG="$(mktemp)"

cleanup() {
  status=$?
  if [ -n "${ARYND_PID:-}" ] && kill -0 "$ARYND_PID" 2>/dev/null; then
    kill "$ARYND_PID" 2>/dev/null || true
    wait "$ARYND_PID" 2>/dev/null || true
  fi
  if [ "$status" -ne 0 ]; then
    echo "--- arynd log ---" >&2
    cat "$LOG" >&2 || true
  fi
  rm -f "$LOG"
  rm -rf "$BINDIR"
  exit "$status"
}
trap cleanup EXIT

echo "bench-serving: building arynd and arynload..."
go build -o "$BINDIR/arynd" ./cmd/arynd
go build -o "$BINDIR/arynload" ./cmd/arynload

echo "bench-serving: starting arynd on $ADDR ($DOCS docs)..."
"$BINDIR/arynd" -addr "$ADDR" -docs "$DOCS" >"$LOG" 2>&1 &
ARYND_PID=$!

# Wait for the health endpoint (up to ~15s; corpus ingest happens at boot).
for i in $(seq 1 150); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$ARYND_PID" 2>/dev/null; then
    echo "bench-serving: arynd died during startup" >&2
    exit 1
  fi
  sleep 0.1
done

echo "bench-serving: driving mixes '$MIXES' at $QPS qps for $DURATION each..."
"$BINDIR/arynload" -addr "$BASE" -mixes "$MIXES" \
  -qps "$QPS" -duration "$DURATION" \
  -out "$OUT" -label "$LABEL" -slo="$SLO"

echo "bench-serving: report written to $OUT (label \"$LABEL\")"
