#!/usr/bin/env bash
# Chaos gate, run by `make chaos` and the CI chaos job: build arynd +
# arynload, boot arynd with the /faults chaos endpoint enabled, and drive
# the opt-in chaos mix — scripted LLM outages, flaky backends, cache
# kills, and ingest saturation — against it. The mix's SLO encodes the
# degradation contract (zero failed requests: degraded 200s, never 500s),
# so an SLO violation fails the run. Methodology: docs/fault-injection.md.
#
# Knobs (environment):
#   ARYNLOAD_ADDR    host:port to serve on   (default 127.0.0.1:8247)
#   CHAOS_DOCS       corpus size             (default 48)
#   CHAOS_QPS        launch rate             (default 15)
#   CHAOS_DURATION   load duration           (default 8s)
#   CHAOS_OUT        output JSON             (default BENCH_chaos.json)
#   CHAOS_LABEL      results label           (default after)
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="${ARYNLOAD_ADDR:-127.0.0.1:8247}"
BASE="http://$ADDR"
DOCS="${CHAOS_DOCS:-48}"
QPS="${CHAOS_QPS:-15}"
DURATION="${CHAOS_DURATION:-8s}"
OUT="${CHAOS_OUT:-BENCH_chaos.json}"
LABEL="${CHAOS_LABEL:-after}"

BINDIR="$(mktemp -d)"
LOG="$(mktemp)"

cleanup() {
  status=$?
  if [ -n "${ARYND_PID:-}" ] && kill -0 "$ARYND_PID" 2>/dev/null; then
    kill "$ARYND_PID" 2>/dev/null || true
    wait "$ARYND_PID" 2>/dev/null || true
  fi
  if [ "$status" -ne 0 ]; then
    echo "--- arynd log ---" >&2
    cat "$LOG" >&2 || true
  fi
  rm -f "$LOG"
  rm -rf "$BINDIR"
  exit "$status"
}
trap cleanup EXIT

echo "chaos: building arynd and arynload..."
go build -o "$BINDIR/arynd" ./cmd/arynd
go build -o "$BINDIR/arynload" ./cmd/arynload

echo "chaos: starting arynd on $ADDR ($DOCS docs, /faults enabled)..."
"$BINDIR/arynd" -addr "$ADDR" -docs "$DOCS" -fault-endpoint >"$LOG" 2>&1 &
ARYND_PID=$!

# Wait for the health endpoint (up to ~15s; corpus ingest happens at boot).
for i in $(seq 1 150); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$ARYND_PID" 2>/dev/null; then
    echo "chaos: arynd died during startup" >&2
    exit 1
  fi
  sleep 0.1
done

echo "chaos: driving the chaos mix at $QPS qps for $DURATION..."
"$BINDIR/arynload" -addr "$BASE" -mixes chaos \
  -qps "$QPS" -duration "$DURATION" \
  -out "$OUT" -label "$LABEL" -slo=true

echo "chaos: degradation contract held; report written to $OUT (label \"$LABEL\")"
