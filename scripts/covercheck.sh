#!/usr/bin/env bash
# Per-package coverage floors, run by `make cover` and the CI coverage
# job. Reads a merged coverage profile (go test -coverprofile over ./...)
# and computes statement coverage per package; packages listed in FLOORS
# must meet their floor or the script fails, listing every violation.
#
# The floors guard the optimization loop: internal/cost (the cost model
# and feedback store), internal/luna (planning, rewriting, the optimize
# phase), and internal/docset (execution, including the proxy cascade).
# Floors are set below current coverage so they catch erosion, not noise.
#
# Usage: covercheck.sh <coverage-profile>
set -uo pipefail

profile="${1:-coverage.out}"
if [ ! -f "$profile" ]; then
  echo "covercheck: profile not found: $profile" >&2
  echo "covercheck: run: go test -coverprofile=$profile ./..." >&2
  exit 1
fi

# package -> minimum percent of statements covered
FLOORS="
aryn/internal/cost 80
aryn/internal/luna 80
aryn/internal/docset 80
"

awk -v floors="$FLOORS" '
BEGIN {
  n = split(floors, lines, "\n")
  for (i = 1; i <= n; i++) {
    if (split(lines[i], f, " ") == 2) floor[f[1]] = f[2] + 0
  }
}
/^mode:/ { next }
{
  # file.go:start.col,end.col numStmts hitCount
  split($1, parts, ":")
  pkg = parts[1]
  sub(/\/[^\/]*$/, "", pkg)   # drop the file name, keep the package path
  stmts[pkg] += $2
  if ($3 > 0) covered[pkg] += $2
}
END {
  fail = 0
  for (pkg in stmts) {
    pct = stmts[pkg] > 0 ? 100 * covered[pkg] / stmts[pkg] : 0
    printf "covercheck: %-28s %6.1f%%", pkg, pct
    if (pkg in floor) {
      printf "  (floor %d%%)", floor[pkg]
      if (pct < floor[pkg]) { printf "  FAIL"; fail = 1; bad = bad sprintf("\n  %s: %.1f%% < %d%%", pkg, pct, floor[pkg]) }
      seen[pkg] = 1
    }
    printf "\n"
  }
  for (pkg in floor) {
    if (!(pkg in seen)) { fail = 1; bad = bad sprintf("\n  %s: no statements in profile", pkg) }
  }
  if (fail) {
    printf "covercheck: coverage floors violated:%s\n", bad > "/dev/stderr"
    exit 1
  }
}
' "$profile" | sort
exit "${PIPESTATUS[0]}"
