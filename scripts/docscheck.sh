#!/usr/bin/env bash
# Documentation gates, run by `make docs-check` and the CI docs job:
#
#   1. every internal/ package carries a doc.go whose package comment
#      documents the package (role / paper counterpart / concurrency
#      contract live there, per ARCHITECTURE.md);
#   2. every cmd/ binary carries a '// Command <name> ...' package
#      comment in some .go file (usage and role documented at the top);
#   3. every relative markdown link in *.md and docs/ resolves to a file
#      or directory that exists (external http(s) links are not fetched —
#      the gate is hermetic);
#   4. every docs/*.md page is linked from at least one other markdown
#      file (no orphaned documentation).
#
# Fails with a list of every problem found, not just the first.
set -uo pipefail

cd "$(dirname "$0")/.."

fail=0

# ---- 1. per-package doc.go coverage ----
for dir in internal/*/; do
  pkg=$(basename "$dir")
  doc="$dir/doc.go"
  if [ ! -f "$doc" ]; then
    echo "docscheck: $dir has no doc.go" >&2
    fail=1
    continue
  fi
  if ! grep -q "^// Package $pkg " "$doc"; then
    echo "docscheck: $doc lacks a '// Package $pkg ...' comment" >&2
    fail=1
  fi
done

# ---- 1b. nested internal packages: package comment coverage ----
# Subpackages (internal/x/y) document themselves with a
# '// Package <pkg> ...' comment in some .go file; the doc.go file
# convention is only enforced at the top level. Fixture trees (testdata)
# are not packages.
for dir in internal/*/*/; do
  case "$dir" in *testdata*) continue ;; esac
  pkg=$(basename "$dir")
  ls "$dir"*.go >/dev/null 2>&1 || continue
  if ! grep -l "^// Package $pkg " "$dir"*.go >/dev/null 2>&1; then
    echo "docscheck: $dir has no '// Package $pkg ...' comment in any .go file" >&2
    fail=1
  fi
done

# ---- 2. per-command package comment coverage ----
for dir in cmd/*/; do
  cmd=$(basename "$dir")
  if ! grep -l "^// Command $cmd " "$dir"*.go >/dev/null 2>&1; then
    echo "docscheck: $dir has no '// Command $cmd ...' package comment" >&2
    fail=1
  fi
done

# ---- 3. markdown relative-link check ----
# Collect tracked-looking markdown: top level and docs/.
mdfiles=$(find . -maxdepth 1 -name '*.md'; find docs -name '*.md' 2>/dev/null)

for md in $mdfiles; do
  dir=$(dirname "$md")
  # Extract (target) parts of [text](target) links, one per line.
  links=$(grep -o '\[[^][]*\]([^()[:space:]]*)' "$md" | sed 's/.*(\(.*\))/\1/') || continue
  for link in $links; do
    case "$link" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    target="${link%%#*}"
    [ -n "$target" ] || continue
    if [ ! -e "$dir/$target" ]; then
      echo "docscheck: $md links to missing file: $link" >&2
      fail=1
    fi
  done
done

# ---- 4. orphaned docs pages ----
# Every docs/*.md must be reachable: linked from some other markdown file.
for page in docs/*.md; do
  [ -e "$page" ] || continue
  name=$(basename "$page")
  linked=0
  for md in $mdfiles; do
    [ "$md" -ef "$page" ] && continue
    if grep -q "[(/]$name" "$md" 2>/dev/null; then
      linked=1
      break
    fi
  done
  if [ "$linked" -eq 0 ]; then
    echo "docscheck: $page is not linked from any other markdown file" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "docscheck: FAILED" >&2
  exit 1
fi
echo "docscheck: OK"
