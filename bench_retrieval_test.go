package aryn

import (
	"fmt"
	"sync"
	"testing"

	"aryn/internal/docmodel"
	"aryn/internal/embed"
	"aryn/internal/index"
)

// This file is the retrieval hot-path benchmark suite behind
// `make bench-retrieval`: embedding throughput (cold and repeated), BM25
// keyword search, exact and HNSW kNN, and the hybrid store path, all at
// 10k-chunk scale. Results land in BENCH_retrieval.json (before/after the
// hot-path overhaul) via cmd/benchjson.

const retrievalCorpusSize = 10000

var retrievalWords = []string{
	"engine", "wing", "landing", "fuel", "bird", "wind", "runway",
	"pilot", "gear", "propeller", "stall", "fire", "terrain", "approach",
	"takeoff", "cruise", "collision", "water", "night", "maintenance",
	"tower", "weather", "visibility", "altitude", "rotor", "taxi",
	"fuselage", "hydraulic", "electrical", "instrument",
}

func retrievalChunkText(i int) string {
	w := retrievalWords
	return fmt.Sprintf("%s %s %s %s narrative report %d",
		w[i%len(w)], w[(i/3)%len(w)], w[(i/7)%len(w)], w[(i/11)%len(w)], i)
}

// retrievalVecs embeds the 10k-chunk corpus once per process.
var retrievalVecs = struct {
	once sync.Once
	vecs [][]float32
}{}

func corpusVectors(b *testing.B) [][]float32 {
	b.Helper()
	retrievalVecs.once.Do(func() {
		em := embed.NewHash(1)
		vecs := make([][]float32, retrievalCorpusSize)
		for i := range vecs {
			vecs[i] = em.Embed(retrievalChunkText(i))
		}
		retrievalVecs.vecs = vecs
	})
	return retrievalVecs.vecs
}

// retrievalStore indexes the corpus (keyword + vector) under 1k parent
// documents of 10 chunks each, once per process.
var retrievalStore = struct {
	once  sync.Once
	store *index.Store
}{}

func corpusStore(b *testing.B) *index.Store {
	b.Helper()
	vecs := corpusVectors(b)
	retrievalStore.once.Do(func() {
		s := index.NewStore()
		for i := 0; i < retrievalCorpusSize; i++ {
			if i%10 == 0 {
				d := docmodel.New(fmt.Sprintf("D%04d", i/10))
				d.SetProperty("us_state", fmt.Sprintf("S%02d", (i/10)%50))
				d.SetProperty("bucket", fmt.Sprintf("b%d", (i/10)%7))
				if err := s.PutDocument(d); err != nil {
					panic(err)
				}
			}
			err := s.PutChunk(index.Chunk{
				ID:       fmt.Sprintf("D%04d#%d", i/10, i%10),
				ParentID: fmt.Sprintf("D%04d", i/10),
				Text:     retrievalChunkText(i),
				Vector:   vecs[i],
				Page:     i%10 + 1,
			})
			if err != nil {
				panic(err)
			}
		}
		retrievalStore.store = s
	})
	return retrievalStore.store
}

// BenchmarkRetrievalEmbedRepeated embeds the same chunk-sized text every
// iteration — the ask-time pattern (every query re-embeds familiar
// vocabulary). This is the acceptance benchmark for cached token
// directions (>= 5x required).
func BenchmarkRetrievalEmbedRepeated(b *testing.B) {
	em := embed.NewHash(1)
	text := "The pilot reported that during cruise flight the engine experienced a total loss of power and the airplane sustained substantial damage to the left wing during the forced landing."
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		em.Embed(text)
	}
}

// BenchmarkRetrievalEmbedCorpus embeds distinct texts drawn from a shared
// vocabulary — the ingest pattern (distinct chunks, overlapping tokens).
func BenchmarkRetrievalEmbedCorpus(b *testing.B) {
	em := embed.NewHash(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		em.Embed(retrievalChunkText(i % retrievalCorpusSize))
	}
}

// BenchmarkRetrievalBM25Search10k measures keyword top-10 over 10k chunks.
func BenchmarkRetrievalBM25Search10k(b *testing.B) {
	s := corpusStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SearchDocs(index.Query{Keyword: "engine fire during landing approach", K: 10})
	}
}

// BenchmarkRetrievalExactKNN10k measures brute-force top-10 over 10k
// vectors.
func BenchmarkRetrievalExactKNN10k(b *testing.B) {
	vecs := corpusVectors(b)
	ix := index.NewExact()
	for i, v := range vecs {
		ix.Add(i, v)
	}
	query := embed.NewHash(1).Embed("engine failure during landing")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(query, 10)
	}
}

// BenchmarkRetrievalHNSW10k measures approximate top-10 over 10k vectors.
func BenchmarkRetrievalHNSW10k(b *testing.B) {
	vecs := corpusVectors(b)
	ix := index.NewHNSW(3)
	for i, v := range vecs {
		ix.Add(i, v)
	}
	query := embed.NewHash(1).Embed("engine failure during landing")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(query, 10)
	}
}

// BenchmarkRetrievalHybrid10k measures the full hybrid SearchDocs path
// (BM25 + vector + RRF fusion + parent reassembly) at 10k chunks.
func BenchmarkRetrievalHybrid10k(b *testing.B) {
	s := corpusStore(b)
	query := embed.NewHash(1).Embed("engine failure during landing")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SearchDocs(index.Query{
			Keyword: "engine fire during landing approach",
			Vector:  query,
			K:       10,
		})
	}
}

// BenchmarkRetrievalSearchChunks10k measures the RAG retrieval path
// (vector top-100 chunks) at 10k chunks.
func BenchmarkRetrievalSearchChunks10k(b *testing.B) {
	s := corpusStore(b)
	query := embed.NewHash(1).Embed("engine failure during landing")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SearchChunks(index.Query{Vector: query, K: 100})
	}
}

// BenchmarkRetrievalFilteredScan10k measures the pure metadata scan path
// (no ranking signal) that returns parent documents.
func BenchmarkRetrievalFilteredScan10k(b *testing.B) {
	s := corpusStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SearchDocs(index.Query{Filter: index.Term("bucket", "b3"), K: 50})
	}
}
